// Package sem implements name resolution and type checking for MiniC, and
// assigns the bookkeeping numbers the rest of the compiler depends on:
// statement IDs (the source-level breakpoint unit), per-function variable
// IDs (dense indices for data-flow bit vectors and debug info), scope
// extents, and the Addressed flag that decides register promotion.
package sem

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/token"
)

// Program is a checked MiniC translation unit.
type Program struct {
	File    *ast.File
	Globals []*ast.Object // in declaration order; index = Object.ID
	Funcs   []*ast.FuncDecl
}

// LookupFunc finds a checked function by name, or nil.
func (p *Program) LookupFunc(name string) *ast.FuncDecl { return p.File.LookupFunc(name) }

type checker struct {
	file  *source.File
	errs  *source.ErrorList
	prog  *Program
	funcs map[string]*ast.Object

	// per-function state
	fn       *ast.FuncDecl
	scopes   []map[string]*ast.Object
	nextStmt int
	loop     int // loop nesting depth, for break/continue
}

// Check resolves and type-checks the file, returning the checked Program.
func Check(f *ast.File, errs *source.ErrorList) (*Program, error) {
	c := &checker{
		file:  f.Source,
		errs:  errs,
		prog:  &Program{File: f},
		funcs: make(map[string]*ast.Object),
	}
	c.checkStructs()
	c.collectGlobals()
	for _, fn := range f.Funcs {
		c.checkFunc(fn)
	}
	c.prog.Funcs = f.Funcs
	if main := f.LookupFunc("main"); main == nil {
		errs.Add(f.Source, source.NoPos, "program has no function 'main'")
	}
	return c.prog, errs.Err()
}

// CheckSource parses and checks in one step (convenience for tests/examples).
func CheckSource(name, text string) (*Program, error) {
	f := source.NewFile(name, text)
	var errs source.ErrorList
	af := parser.Parse(f, &errs)
	if errs.Len() > 0 {
		return nil, errs.Err()
	}
	return Check(af, &errs)
}

func (c *checker) errorf(sp source.Span, format string, args ...any) {
	c.errs.Add(c.file, sp.Start, format, args...)
}

// ---------------------------------------------------------------- structs

// checkStructs validates file-scope struct declarations: every field must
// be a scalar (int or float — one 4-byte slot each, so offsets are simply
// 4*index), names must be unique, and a struct needs at least one field.
func (c *checker) checkStructs() {
	for _, sd := range c.prog.File.Structs {
		if len(sd.Typ.Fields) == 0 {
			c.errorf(sd.Spn, "struct %q has no fields", sd.Name)
		}
		seen := map[string]bool{}
		for _, f := range sd.Typ.Fields {
			if !ast.IsArith(f.Type) {
				c.errorf(sd.Spn, "field %q of struct %q must be int or float", f.Name, sd.Name)
			}
			if seen[f.Name] {
				c.errorf(sd.Spn, "duplicate field %q in struct %q", f.Name, sd.Name)
			}
			seen[f.Name] = true
		}
	}
}

// addMembers materializes one member object per field of a struct-typed
// local or parameter, named "base.field" and appended to fn.Locals so each
// field owns a dense variable ID. SROA later promotes these to scalar
// pseudo-registers; the classifier tracks each independently.
func (c *checker) addMembers(base *ast.Object) {
	st := base.Type.(*ast.StructType)
	for i, f := range st.Fields {
		m := &ast.Object{
			Name: base.Name + "." + f.Name, Kind: base.Kind, Type: f.Type,
			Decl: base.Decl, ID: len(c.fn.Locals),
			ScopeStart: base.ScopeStart, ScopeEnd: base.ScopeEnd,
			Base: base, FieldIdx: i,
		}
		base.Members = append(base.Members, m)
		c.fn.Locals = append(c.fn.Locals, m)
	}
}

// ---------------------------------------------------------------- globals

func (c *checker) collectGlobals() {
	seen := map[string]bool{}
	for i, d := range c.prog.File.Globals {
		if seen[d.Name] {
			c.errorf(d.Spn, "duplicate global %q", d.Name)
		}
		seen[d.Name] = true
		obj := &ast.Object{Name: d.Name, Kind: ast.ObjGlobal, Type: d.Typ, Decl: d, ID: i}
		if arr, isArr := d.Typ.(*ast.ArrayType); isArr {
			obj.Addressed = true
			if ast.IsStruct(arr.Elem) {
				c.errorf(d.Spn, "arrays of structs are not supported")
			}
		}
		if ast.IsStruct(d.Typ) {
			// Globals always live in memory; struct globals are accessed
			// field-by-field through the base address and need no member
			// objects (every field is trivially resident and current).
			obj.Addressed = true
		}
		d.Obj = obj
		c.prog.Globals = append(c.prog.Globals, obj)
		if d.Init != nil {
			c.checkExpr(d.Init)
			switch d.Init.(type) {
			case *ast.IntLit, *ast.FloatLit:
				d.Init = c.convert(d.Init, d.Typ, d.Spn)
			default:
				c.errorf(d.Spn, "global initializer must be a constant literal")
			}
		}
	}
	for _, fn := range c.prog.File.Funcs {
		if seen[fn.Name] {
			c.errorf(fn.Spn, "duplicate declaration %q", fn.Name)
		}
		seen[fn.Name] = true
		obj := &ast.Object{Name: fn.Name, Kind: ast.ObjFunc, Type: fn.Ret, Func: fn}
		fn.Obj = obj
		c.funcs[fn.Name] = obj
	}
}

// ---------------------------------------------------------------- scopes

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*ast.Object{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(obj *ast.Object, sp source.Span) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[obj.Name]; dup {
		c.errorf(sp, "duplicate declaration of %q in this scope", obj.Name)
	}
	top[obj.Name] = obj
}

func (c *checker) lookup(name string) *ast.Object {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if obj, ok := c.scopes[i][name]; ok {
			return obj
		}
	}
	for _, g := range c.prog.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// ---------------------------------------------------------------- funcs

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.fn = fn
	c.nextStmt = 0
	c.loop = 0
	c.scopes = nil
	c.pushScope()
	if ast.IsStruct(fn.Ret) {
		c.errorf(fn.Spn, "function %q cannot return a struct", fn.Name)
	}
	for _, p := range fn.Params {
		obj := &ast.Object{
			Name: p.Name, Kind: ast.ObjParam, Type: p.Typ, Decl: p,
			ID: len(fn.Locals), ScopeStart: 0, ScopeEnd: 1 << 30,
		}
		p.Obj = obj
		fn.Locals = append(fn.Locals, obj)
		c.declare(obj, p.Spn)
	}
	// Struct-param member objects come after all parameter objects so that
	// parameter IDs stay positional (ID == parameter index).
	for _, p := range fn.Params {
		if ast.IsStruct(p.Typ) {
			c.addMembers(p.Obj)
		}
	}
	c.checkBlock(fn.Body)
	fn.NumStmts = c.nextStmt
	for _, o := range fn.Locals {
		if o.ScopeEnd > fn.NumStmts {
			o.ScopeEnd = fn.NumStmts
		}
	}
	// Member objects shadow their base's final scope extent.
	for _, o := range fn.Locals {
		if o.Base != nil {
			o.ScopeStart, o.ScopeEnd = o.Base.ScopeStart, o.Base.ScopeEnd
		}
	}
	c.popScope()
}

func (c *checker) assignID(s ast.Stmt) { s.SetID(c.nextStmt); c.nextStmt++ }

func (c *checker) checkBlock(b *ast.Block) {
	b.SetID(-1) // blocks themselves are not breakpoints
	c.pushScope()
	var declared []*ast.Object
	for _, s := range b.Stmts {
		if obj := c.checkStmt(s); obj != nil {
			declared = append(declared, obj)
		}
	}
	// Variables declared in this block go out of scope at its end.
	for _, o := range declared {
		o.ScopeEnd = c.nextStmt
	}
	c.popScope()
}

// checkStmt checks one statement; if it declares a variable, the new object
// is returned so the enclosing block can close its scope.
func (c *checker) checkStmt(s ast.Stmt) *ast.Object {
	switch s := s.(type) {
	case *ast.Block:
		c.checkBlock(s)
		return nil

	case *ast.DeclStmt:
		c.assignID(s)
		d := s.Decl
		if d.Typ.Size() == 0 {
			c.errorf(d.Spn, "variable %q has void type", d.Name)
		}
		obj := &ast.Object{
			Name: d.Name, Kind: ast.ObjLocal, Type: d.Typ, Decl: d,
			ID: len(c.fn.Locals), ScopeStart: s.ID(), ScopeEnd: 1 << 30,
		}
		if arr, isArr := d.Typ.(*ast.ArrayType); isArr {
			obj.Addressed = true
			if ast.IsStruct(arr.Elem) {
				c.errorf(d.Spn, "arrays of structs are not supported")
			}
		}
		d.Obj = obj
		c.fn.Locals = append(c.fn.Locals, obj)
		if ast.IsStruct(d.Typ) {
			c.addMembers(obj)
			if d.Init != nil {
				c.errorf(d.Spn, "struct declarations cannot have initializers; assign fields individually")
				d.Init = nil
			}
		} else if d.Init != nil {
			c.checkExpr(d.Init)
			d.Init = c.convert(d.Init, scalarOf(d.Typ), d.Spn)
		}
		c.declare(obj, d.Spn)
		return obj

	case *ast.AssignStmt:
		c.assignID(s)
		lt := c.checkLValue(s.LHS)
		c.checkExpr(s.RHS)
		if s.Op != token.ASSIGN {
			// Compound assignment: lhs op= rhs requires arithmetic lhs.
			if !ast.IsArith(lt) && !isPointer(lt) {
				c.errorf(s.LHS.Span(), "invalid operand of compound assignment")
			}
		}
		if isPointer(lt) {
			// Pointer assignment: rhs must be pointer of same type or
			// pointer arithmetic result; for op= only +=/-= with int.
			if s.Op == token.ASSIGN {
				if !ast.SameType(lt, exprType(s.RHS)) {
					c.errorf(s.RHS.Span(), "cannot assign %s to %s", exprType(s.RHS), lt)
				}
			} else if s.Op == token.PLUSASSIGN || s.Op == token.MINUSASSIGN {
				s.RHS = c.convert(s.RHS, ast.IntType, s.RHS.Span())
			} else {
				c.errorf(s.Span(), "invalid pointer assignment operator")
			}
		} else {
			s.RHS = c.convert(s.RHS, lt, s.RHS.Span())
		}
		return nil

	case *ast.IncDecStmt:
		c.assignID(s)
		t := c.checkLValue(s.X)
		if !ast.IsArith(t) && !isPointer(t) {
			c.errorf(s.X.Span(), "invalid operand of %s", s.Op)
		}
		return nil

	case *ast.ExprStmt:
		c.assignID(s)
		c.checkExpr(s.X)
		if _, ok := s.X.(*ast.CallExpr); !ok {
			c.errorf(s.Span(), "expression statement must be a call")
		}
		return nil

	case *ast.IfStmt:
		c.assignID(s)
		c.checkCond(s.Cond)
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
		return nil

	case *ast.WhileStmt:
		c.assignID(s)
		c.checkCond(s.Cond)
		c.loop++
		c.checkBlock(s.Body)
		c.loop--
		return nil

	case *ast.DoWhileStmt:
		c.assignID(s)
		c.loop++
		c.checkBlock(s.Body)
		c.loop--
		c.checkCond(s.Cond)
		return nil

	case *ast.ForStmt:
		c.assignID(s)
		c.pushScope()
		var declared *ast.Object
		if s.Init != nil {
			declared = c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		c.loop++
		c.checkBlock(s.Body)
		c.loop--
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		if declared != nil {
			declared.ScopeEnd = c.nextStmt
		}
		c.popScope()
		return nil

	case *ast.ReturnStmt:
		c.assignID(s)
		if s.X != nil {
			c.checkExpr(s.X)
			if c.fn.Ret.Size() == 0 {
				c.errorf(s.Span(), "void function %q returns a value", c.fn.Name)
			} else {
				s.X = c.convert(s.X, c.fn.Ret, s.Span())
			}
		} else if c.fn.Ret.Size() != 0 {
			c.errorf(s.Span(), "non-void function %q returns no value", c.fn.Name)
		}
		return nil

	case *ast.BreakStmt:
		c.assignID(s)
		if c.loop == 0 {
			c.errorf(s.Span(), "break outside loop")
		}
		return nil

	case *ast.ContinueStmt:
		c.assignID(s)
		if c.loop == 0 {
			c.errorf(s.Span(), "continue outside loop")
		}
		return nil

	case *ast.PrintStmt:
		c.assignID(s)
		for i := range s.Args {
			if !s.Args[i].IsStr {
				c.checkExpr(s.Args[i].X)
				if !ast.IsArith(exprType(s.Args[i].X)) && !isPointer(exprType(s.Args[i].X)) {
					c.errorf(s.Args[i].X.Span(), "cannot print value of type %s", exprType(s.Args[i].X))
				}
			}
		}
		return nil
	}
	panic(fmt.Sprintf("sem: unknown statement %T", s))
}

func (c *checker) checkCond(e ast.Expr) {
	c.checkExpr(e)
	t := exprType(e)
	if !ast.IsArith(t) && !isPointer(t) {
		c.errorf(e.Span(), "condition must be scalar, got %s", t)
	}
}

// ---------------------------------------------------------------- exprs

func exprType(e ast.Expr) ast.Type {
	if e == nil || e.Type() == nil {
		return ast.IntType
	}
	return e.Type()
}

func isPointer(t ast.Type) bool { _, ok := t.(*ast.PointerType); return ok }

func scalarOf(t ast.Type) ast.Type {
	if a, ok := t.(*ast.ArrayType); ok {
		return a.Elem
	}
	return t
}

// convert inserts an int<->float cast if needed so e has type want.
func (c *checker) convert(e ast.Expr, want ast.Type, sp source.Span) ast.Expr {
	have := exprType(e)
	if ast.SameType(have, want) {
		return e
	}
	if ast.IsArith(have) && ast.IsArith(want) {
		return ast.NewCast(want, e, e.Span())
	}
	if isPointer(want) && isPointer(have) {
		return e // already same-shape pointer; mismatch reported by caller
	}
	c.errorf(sp, "cannot convert %s to %s", have, want)
	return e
}

// checkLValue checks an assignable expression and returns its type.
func (c *checker) checkLValue(e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.Ident:
		c.checkExpr(e)
		if e.Obj != nil && e.Obj.Kind == ast.ObjFunc {
			c.errorf(e.Span(), "cannot assign to function %q", e.Name)
		}
		if _, isArr := exprType(e).(*ast.ArrayType); isArr {
			c.errorf(e.Span(), "cannot assign to array %q", e.Name)
		}
		return exprType(e)
	case *ast.IndexExpr:
		c.checkExpr(e)
		return exprType(e)
	case *ast.FieldExpr:
		c.checkExpr(e)
		return exprType(e)
	case *ast.UnaryExpr:
		if e.Op == token.STAR {
			c.checkExpr(e)
			return exprType(e)
		}
	}
	c.errorf(e.Span(), "invalid assignment target")
	c.checkExpr(e)
	return exprType(e)
}

func (c *checker) checkExpr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.IntLit, *ast.FloatLit:
		// already typed by constructor

	case *ast.Ident:
		obj := c.lookup(e.Name)
		if obj == nil {
			if fo, ok := c.funcs[e.Name]; ok {
				obj = fo
			}
		}
		if obj == nil {
			c.errorf(e.Span(), "undeclared identifier %q", e.Name)
			e.SetType(ast.IntType)
			return
		}
		if obj.Kind == ast.ObjFunc {
			// Call expressions resolve their callee directly, so a function
			// name reaching here is being used as a value.
			c.errorf(e.Span(), "cannot convert function %q to a value", e.Name)
		}
		e.Obj = obj
		e.SetType(obj.Type)

	case *ast.BinaryExpr:
		c.checkExpr(e.X)
		c.checkExpr(e.Y)
		xt, yt := decay(exprType(e.X)), decay(exprType(e.Y))
		switch e.Op {
		case token.PLUS, token.MINUS:
			// Pointer arithmetic: ptr+int, int+ptr, ptr-int, ptr-ptr.
			if isPointer(xt) && ast.IsInt(yt) {
				e.SetType(xt)
				return
			}
			if e.Op == token.PLUS && ast.IsInt(xt) && isPointer(yt) {
				e.SetType(yt)
				return
			}
			if e.Op == token.MINUS && isPointer(xt) && isPointer(yt) {
				e.SetType(ast.IntType)
				return
			}
			fallthrough
		case token.STAR, token.SLASH:
			if !ast.IsArith(xt) || !ast.IsArith(yt) {
				c.errorf(e.Span(), "invalid operands of %s (%s, %s)", e.Op, xt, yt)
				e.SetType(ast.IntType)
				return
			}
			if ast.IsFloat(xt) || ast.IsFloat(yt) {
				e.X = c.convert(e.X, ast.FloatType, e.Span())
				e.Y = c.convert(e.Y, ast.FloatType, e.Span())
				e.SetType(ast.FloatType)
			} else {
				e.SetType(ast.IntType)
			}
		case token.PERCENT, token.SHL, token.SHR, token.OR, token.XOR:
			if !ast.IsInt(xt) || !ast.IsInt(yt) {
				c.errorf(e.Span(), "operands of %s must be int", e.Op)
			}
			e.SetType(ast.IntType)
		case token.EQ, token.NEQ, token.LT, token.GT, token.LEQ, token.GEQ:
			if isPointer(xt) && isPointer(yt) {
				e.SetType(ast.IntType)
				return
			}
			if !ast.IsArith(xt) || !ast.IsArith(yt) {
				c.errorf(e.Span(), "invalid comparison operands (%s, %s)", xt, yt)
			} else if ast.IsFloat(xt) || ast.IsFloat(yt) {
				e.X = c.convert(e.X, ast.FloatType, e.Span())
				e.Y = c.convert(e.Y, ast.FloatType, e.Span())
			}
			e.SetType(ast.IntType)
		case token.ANDAND, token.OROR:
			if !scalarOK(xt) || !scalarOK(yt) {
				c.errorf(e.Span(), "operands of %s must be scalar", e.Op)
			}
			e.SetType(ast.IntType)
		default:
			c.errorf(e.Span(), "unknown binary operator %s", e.Op)
			e.SetType(ast.IntType)
		}

	case *ast.UnaryExpr:
		c.checkExpr(e.X)
		xt := exprType(e.X)
		switch e.Op {
		case token.MINUS:
			if !ast.IsArith(xt) {
				c.errorf(e.Span(), "invalid operand of unary -")
				e.SetType(ast.IntType)
				return
			}
			e.SetType(xt)
		case token.NOT:
			if !scalarOK(decay(xt)) {
				c.errorf(e.Span(), "invalid operand of !")
			}
			e.SetType(ast.IntType)
		case token.STAR:
			pt, ok := decay(xt).(*ast.PointerType)
			if !ok {
				c.errorf(e.Span(), "cannot dereference %s", xt)
				e.SetType(ast.IntType)
				return
			}
			e.SetType(pt.Elem)
		case token.AMP:
			switch x := e.X.(type) {
			case *ast.Ident:
				if x.Obj != nil && x.Obj.IsVar() {
					if ast.IsStruct(x.Obj.Type) {
						c.errorf(e.Span(), "cannot take the address of struct %q; take a field's address instead", x.Name)
						e.SetType(&ast.PointerType{Elem: ast.IntType})
						return
					}
					x.Obj.Addressed = true
					e.SetType(&ast.PointerType{Elem: scalarOf(x.Obj.Type)})
					if _, isArr := x.Obj.Type.(*ast.ArrayType); isArr {
						// &arr is the array's address (same as arr).
						e.SetType(&ast.PointerType{Elem: x.Obj.Type.(*ast.ArrayType).Elem})
					}
					return
				}
				c.errorf(e.Span(), "cannot take address of %q", x.Name)
				e.SetType(&ast.PointerType{Elem: ast.IntType})
			case *ast.IndexExpr:
				e.SetType(&ast.PointerType{Elem: exprType(x)})
			case *ast.FieldExpr:
				// &s.f pins the whole aggregate in memory: the base can no
				// longer be SROA'd, and the member stays memory-resident.
				if x.Member != nil {
					x.Member.Addressed = true
					x.Member.Base.Addressed = true
				} else if id, ok := x.X.(*ast.Ident); ok && id.Obj != nil {
					id.Obj.Addressed = true
				}
				e.SetType(&ast.PointerType{Elem: exprType(x)})
			default:
				c.errorf(e.Span(), "cannot take address of this expression")
				e.SetType(&ast.PointerType{Elem: ast.IntType})
			}
		default:
			c.errorf(e.Span(), "unknown unary operator %s", e.Op)
			e.SetType(ast.IntType)
		}

	case *ast.IndexExpr:
		c.checkExpr(e.X)
		c.checkExpr(e.Index)
		e.Index = c.convert(e.Index, ast.IntType, e.Index.Span())
		switch bt := decay(exprType(e.X)).(type) {
		case *ast.PointerType:
			e.SetType(bt.Elem)
		default:
			c.errorf(e.Span(), "cannot index %s", exprType(e.X))
			e.SetType(ast.IntType)
		}

	case *ast.FieldExpr:
		c.checkExpr(e.X)
		st, ok := exprType(e.X).(*ast.StructType)
		if !ok {
			c.errorf(e.Span(), "%s has no fields", exprType(e.X))
			e.SetType(ast.IntType)
			return
		}
		idx := st.FieldIndex(e.Name)
		if idx < 0 {
			c.errorf(e.Span(), "struct %q has no field %q", st.Name, e.Name)
			e.SetType(ast.IntType)
			return
		}
		e.Idx = idx
		e.SetType(st.Fields[idx].Type)
		if id, ok := e.X.(*ast.Ident); ok && id.Obj != nil && idx < len(id.Obj.Members) {
			e.Member = id.Obj.Members[idx]
		}

	case *ast.CallExpr:
		fo, ok := c.funcs[e.Fun.Name]
		if !ok {
			c.errorf(e.Span(), "call of undeclared function %q", e.Fun.Name)
			e.SetType(ast.IntType)
			for _, a := range e.Args {
				c.checkExpr(a)
			}
			return
		}
		e.Fun.Obj = fo
		fn := fo.Func
		if len(e.Args) != len(fn.Params) {
			c.errorf(e.Span(), "call of %q with %d args, want %d",
				fn.Name, len(e.Args), len(fn.Params))
		}
		for i, a := range e.Args {
			c.checkExpr(a)
			if i < len(fn.Params) {
				want := fn.Params[i].Typ
				have := decay(exprType(a))
				if isPointer(want) {
					if !ast.SameType(want, have) {
						c.errorf(a.Span(), "argument %d of %q: cannot pass %s as %s",
							i+1, fn.Name, exprType(a), want)
					}
				} else {
					e.Args[i] = c.convert(a, want, a.Span())
				}
			}
		}
		e.SetType(fn.Ret)

	case *ast.CastExpr:
		c.checkExpr(e.X)
		if !ast.IsArith(decay(exprType(e.X))) || !ast.IsArith(e.To) {
			c.errorf(e.Span(), "invalid cast from %s to %s", exprType(e.X), e.To)
		}
		e.SetType(e.To)

	default:
		panic(fmt.Sprintf("sem: unknown expression %T", e))
	}
}

func scalarOK(t ast.Type) bool { return ast.IsArith(t) || isPointer(t) }

// decay converts array types to pointer-to-element, as in C expressions.
func decay(t ast.Type) ast.Type {
	if a, ok := t.(*ast.ArrayType); ok {
		return &ast.PointerType{Elem: a.Elem}
	}
	return t
}
