package sem

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func checkOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := CheckSource("test.mc", src)
	if err != nil {
		t.Fatalf("check error: %v", err)
	}
	return p
}

func checkErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := CheckSource("test.mc", src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

func TestCheckSimple(t *testing.T) {
	p := checkOK(t, `
int add(int a, int b) { return a + b; }
int main() { return add(1, 2); }
`)
	add := p.LookupFunc("add")
	if len(add.Locals) != 2 {
		t.Errorf("add has %d locals, want 2 (params)", len(add.Locals))
	}
	if add.Locals[0].Kind != ast.ObjParam {
		t.Errorf("first local should be a param")
	}
}

func TestCheckStatementIDs(t *testing.T) {
	p := checkOK(t, `
int main() {
	int x = 1;
	int y = 2;
	if (x < y) { x = y; }
	return x;
}
`)
	fn := p.LookupFunc("main")
	if fn.NumStmts != 5 {
		t.Errorf("NumStmts = %d, want 5 (2 decls, if, then-assign, return)", fn.NumStmts)
	}
	ids := map[int]bool{}
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		if b, ok := s.(*ast.Block); ok {
			for _, st := range b.Stmts {
				walk(st)
			}
			return
		}
		if ids[s.ID()] {
			t.Errorf("duplicate statement ID %d", s.ID())
		}
		ids[s.ID()] = true
		if ifs, ok := s.(*ast.IfStmt); ok {
			walk(ifs.Then)
			if ifs.Else != nil {
				walk(ifs.Else)
			}
		}
	}
	walk(fn.Body)
	if len(ids) != fn.NumStmts {
		t.Errorf("got %d distinct IDs, want %d", len(ids), fn.NumStmts)
	}
}

func TestCheckScopes(t *testing.T) {
	p := checkOK(t, `
int main() {
	int x = 1;
	if (x) {
		int y = 2;
		x = y;
	}
	return x;
}
`)
	fn := p.LookupFunc("main")
	var x, y *ast.Object
	for _, o := range fn.Locals {
		switch o.Name {
		case "x":
			x = o
		case "y":
			y = o
		}
	}
	if x == nil || y == nil {
		t.Fatal("missing locals")
	}
	if y.ScopeEnd > x.ScopeEnd {
		t.Errorf("inner y scope [%d,%d) should end before x scope [%d,%d)",
			y.ScopeStart, y.ScopeEnd, x.ScopeStart, x.ScopeEnd)
	}
	if y.ScopeStart <= x.ScopeStart {
		t.Errorf("y should start after x")
	}
}

func TestCheckAddressed(t *testing.T) {
	p := checkOK(t, `
int main() {
	int x = 1;
	int y = 2;
	int *p = &x;
	int a[4];
	a[0] = *p + y;
	return a[0];
}
`)
	fn := p.LookupFunc("main")
	want := map[string]bool{"x": true, "y": false, "p": false, "a": true}
	for _, o := range fn.Locals {
		if w, ok := want[o.Name]; ok && o.Addressed != w {
			t.Errorf("%s.Addressed = %v, want %v", o.Name, o.Addressed, w)
		}
	}
}

func TestCheckImplicitConversions(t *testing.T) {
	p := checkOK(t, `
float half(int x) { return x / 2.0; }
int main() { float f = half(3); int i = f; return i; }
`)
	half := p.LookupFunc("half")
	ret := half.Body.Stmts[0].(*ast.ReturnStmt)
	bin := ret.X.(*ast.BinaryExpr)
	if !ast.IsFloat(bin.Type()) {
		t.Errorf("x / 2.0 should be float, got %v", bin.Type())
	}
	if _, ok := bin.X.(*ast.CastExpr); !ok {
		t.Errorf("int operand should get an implicit cast, got %T", bin.X)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { return y; }`, "undeclared"},
		{`int main() { int x; int x; return 0; }`, "duplicate"},
		{`int f() { return 1; } int f() { return 2; } int main() { return 0; }`, "duplicate"},
		{`int main() { break; }`, "break outside loop"},
		{`int main() { continue; }`, "continue outside loop"},
		{`void f() { return 1; } int main() { return 0; }`, "void function"},
		{`int f() { return; } int main() { return 0; }`, "returns no value"},
		{`int main() { int a[3]; a = 2; return 0; }`, "cannot assign to array"},
		{`int main() { int x; x = main; return 0; }`, "cannot convert"},
		{`int main(int a) { return f(1); }`, "undeclared function"},
		{`int g(int a) { return a; } int main() { return g(1, 2); }`, "2 args, want 1"},
		{`int main() { int x = 1.5 % 2; return x; }`, "must be int"},
		{`int main() { int x = *4; return x; }`, "cannot dereference"},
		{`float x; int main() { float *p = &x; int *q; q = p; return 0; }`, "cannot assign"},
		{`int main() { 1 + 2; return 0; }`, "must be a call"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestCheckNoMain(t *testing.T) {
	checkErr(t, `int f() { return 0; }`, "no function 'main'")
}

func TestCheckGlobalInit(t *testing.T) {
	checkOK(t, `int g = 3; float h = 2.5; int main() { return g; }`)
	checkErr(t, `int g = 1 + 2; int main() { return g; }`, "constant literal")
}

func TestCheckVariableIDsDense(t *testing.T) {
	p := checkOK(t, `
int f(int a, float b) {
	int c = 1;
	float d = b;
	return a + c + int(d);
}
int main() { return f(1, 2.0); }
`)
	fn := p.LookupFunc("f")
	for i, o := range fn.Locals {
		if o.ID != i {
			t.Errorf("local %s has ID %d at index %d", o.Name, o.ID, i)
		}
	}
}
