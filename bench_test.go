// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation section (run with `go test -bench=. -benchmem`). Each
// benchmark reports the paper's headline metric for that table/figure as
// custom benchmark units alongside the harness cost itself.
package repro

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/mach"
)

// BenchmarkTable2_ProgramStats regenerates Table 2 (program sizes,
// breakpoints per function, variables in scope per breakpoint).
func BenchmarkTable2_ProgramStats(b *testing.B) {
	var rows []bench.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	var bps, vars float64
	for _, r := range rows {
		bps += float64(r.Breakpoints)
		vars += r.VarsPerBreak
	}
	b.ReportMetric(bps, "total-breakpoints")
	b.ReportMetric(vars/float64(len(rows)), "avg-vars/bkpt")
}

// BenchmarkTable3_Performance regenerates the Table 3 analog (optimized vs
// unoptimized cycles per workload).
func BenchmarkTable3_Performance(b *testing.B) {
	var rows []bench.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	geo := 1.0
	for _, r := range rows {
		geo *= r.Speedup
	}
	b.ReportMetric(math.Pow(geo, 1.0/float64(len(rows))), "geomean-speedup")
}

// BenchmarkTable4_SuspectShare regenerates Table 4 (the percentage of
// endangered variables that are suspect).
func BenchmarkTable4_SuspectShare(b *testing.B) {
	var rows []bench.Table4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0.0
	for _, r := range rows {
		total += r.PctSuspect
	}
	b.ReportMetric(total/float64(len(rows)), "avg-%suspect")
}

// BenchmarkFigure5a regenerates Figure 5(a): per-breakpoint classification
// averages with global optimizations only.
func BenchmarkFigure5a(b *testing.B) {
	benchmarkFigure5(b, bench.Figure5a)
}

// BenchmarkFigure5b regenerates Figure 5(b): per-breakpoint classification
// averages with global optimizations and register allocation.
func BenchmarkFigure5b(b *testing.B) {
	benchmarkFigure5(b, bench.Figure5b)
}

func benchmarkFigure5(b *testing.B, f func() ([]bench.Fig5Row, error)) {
	var rows []bench.Fig5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = f()
		if err != nil {
			b.Fatal(err)
		}
	}
	var cur, end, nonres float64
	for _, r := range rows {
		cur += r.Current
		end += r.Endangered
		nonres += r.Nonresident
	}
	n := float64(len(rows))
	b.ReportMetric(cur/n, "avg-current/bkpt")
	b.ReportMetric(end/n, "avg-endangered/bkpt")
	b.ReportMetric(nonres/n, "avg-nonresident/bkpt")
}

// BenchmarkClassifierOnly isolates the cost of the paper's contribution —
// the data-flow analyses plus per-breakpoint classification — over the
// compiled workloads (the paper notes "neither the execution time of the
// analysis phase nor the storage requirements are significant").
func BenchmarkClassifierOnly(b *testing.B) {
	cfg := compile.O2NoRegAlloc()
	cfg.RegAlloc = true
	var compiled []*compile.Result
	for _, name := range bench.Names {
		res, err := bench.CompileWorkload(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		compiled = append(compiled, res)
	}
	b.ResetTimer()
	classified := 0
	for i := 0; i < b.N; i++ {
		classified = 0
		for _, res := range compiled {
			for _, f := range res.Mach.Funcs {
				a := core.Analyze(f)
				for s := 0; s < f.Decl.NumStmts; s++ {
					cs, ok := a.ClassifyAllAt(s)
					if !ok {
						continue
					}
					classified += len(cs)
				}
			}
		}
	}
	b.ReportMetric(float64(classified), "classifications")
}

// BenchmarkClassifyAllHot measures the classifier's steady-state query
// cost: the analyses are solved once (as the debug service does after a
// compile) and then every statement of every Table 2 workload function is
// classified repeatedly — the workload shape of harness-style clients
// that issue thousands of classify-all queries per binary.
func BenchmarkClassifyAllHot(b *testing.B) {
	cfg := compile.O2NoRegAlloc()
	cfg.RegAlloc = true
	type fnA struct {
		a     *core.Analysis
		stmts int
	}
	var fns []fnA
	for _, name := range bench.Names {
		res, err := bench.CompileWorkload(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range res.Mach.Funcs {
			fns = append(fns, fnA{a: core.Analyze(f), stmts: f.Decl.NumStmts})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	classified := 0
	for i := 0; i < b.N; i++ {
		classified = 0
		for _, fa := range fns {
			for s := 0; s < fa.stmts; s++ {
				cs, ok := fa.a.ClassifyAllAt(s)
				if !ok {
					continue
				}
				classified += len(cs)
			}
		}
	}
	b.ReportMetric(float64(classified), "classifications")
}

// BenchmarkSolverRPO measures the data-flow solver alone on the CFGs of a
// real workload (gcc), with deterministic synthetic gen/kill sets, in both
// the may and must variants — the cost every solver client (PRE, constant
// folding, liveness, the classifier) pays per function.
func BenchmarkSolverRPO(b *testing.B) {
	res, err := bench.CompileWorkload("gcc", compile.O2())
	if err != nil {
		b.Fatal(err)
	}
	const bits = 256
	type prob struct {
		graph     dataflow.Graph
		gen, kill []*dataflow.BitSet
	}
	var probs []prob
	for _, f := range res.Mach.Funcs {
		idx := map[*mach.Block]int{}
		for i, blk := range f.Blocks {
			idx[blk] = i
		}
		n := len(f.Blocks)
		g := dataflow.Graph{N: n, Succs: make([][]int, n), Preds: make([][]int, n)}
		for i, blk := range f.Blocks {
			for _, s := range blk.Succs {
				si := idx[s]
				g.Succs[i] = append(g.Succs[i], si)
				g.Preds[si] = append(g.Preds[si], i)
			}
		}
		p := prob{graph: g, gen: make([]*dataflow.BitSet, n), kill: make([]*dataflow.BitSet, n)}
		rnd := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < n; i++ {
			p.gen[i] = dataflow.NewBitSet(bits)
			p.kill[i] = dataflow.NewBitSet(bits)
			for j := 0; j < bits; j++ {
				rnd = rnd*6364136223846793005 + 1442695040888963407
				switch rnd >> 62 {
				case 0:
					p.gen[i].Set(j)
				case 1:
					p.kill[i].Set(j)
				}
			}
		}
		probs = append(probs, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range probs {
			(&dataflow.Problem{Graph: p.graph, Dir: dataflow.Forward, Meet: dataflow.Union,
				Bits: bits, Gen: p.gen, Kill: p.kill}).Solve()
			(&dataflow.Problem{Graph: p.graph, Dir: dataflow.Forward, Meet: dataflow.Intersect,
				Bits: bits, Gen: p.gen, Kill: p.kill}).Solve()
		}
	}
}

// BenchmarkCompileWorkloads measures full-pipeline compilation throughput.
func BenchmarkCompileWorkloads(b *testing.B) {
	for _, name := range bench.Names {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.CompileWorkload(name, compile.O2()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures simulator speed on one workload at O2.
func BenchmarkSimulator(b *testing.B) {
	res, err := bench.CompileWorkload("compress", compile.O2())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bench.RunWorkload(res)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(m.Steps), "vm-instructions")
		}
	}
}
