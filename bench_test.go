// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation section (run with `go test -bench=. -benchmem`). Each
// benchmark reports the paper's headline metric for that table/figure as
// custom benchmark units alongside the harness cost itself.
package repro

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/core"
)

// BenchmarkTable2_ProgramStats regenerates Table 2 (program sizes,
// breakpoints per function, variables in scope per breakpoint).
func BenchmarkTable2_ProgramStats(b *testing.B) {
	var rows []bench.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	var bps, vars float64
	for _, r := range rows {
		bps += float64(r.Breakpoints)
		vars += r.VarsPerBreak
	}
	b.ReportMetric(bps, "total-breakpoints")
	b.ReportMetric(vars/float64(len(rows)), "avg-vars/bkpt")
}

// BenchmarkTable3_Performance regenerates the Table 3 analog (optimized vs
// unoptimized cycles per workload).
func BenchmarkTable3_Performance(b *testing.B) {
	var rows []bench.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	geo := 1.0
	for _, r := range rows {
		geo *= r.Speedup
	}
	b.ReportMetric(math.Pow(geo, 1.0/float64(len(rows))), "geomean-speedup")
}

// BenchmarkTable4_SuspectShare regenerates Table 4 (the percentage of
// endangered variables that are suspect).
func BenchmarkTable4_SuspectShare(b *testing.B) {
	var rows []bench.Table4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0.0
	for _, r := range rows {
		total += r.PctSuspect
	}
	b.ReportMetric(total/float64(len(rows)), "avg-%suspect")
}

// BenchmarkFigure5a regenerates Figure 5(a): per-breakpoint classification
// averages with global optimizations only.
func BenchmarkFigure5a(b *testing.B) {
	benchmarkFigure5(b, bench.Figure5a)
}

// BenchmarkFigure5b regenerates Figure 5(b): per-breakpoint classification
// averages with global optimizations and register allocation.
func BenchmarkFigure5b(b *testing.B) {
	benchmarkFigure5(b, bench.Figure5b)
}

func benchmarkFigure5(b *testing.B, f func() ([]bench.Fig5Row, error)) {
	var rows []bench.Fig5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = f()
		if err != nil {
			b.Fatal(err)
		}
	}
	var cur, end, nonres float64
	for _, r := range rows {
		cur += r.Current
		end += r.Endangered
		nonres += r.Nonresident
	}
	n := float64(len(rows))
	b.ReportMetric(cur/n, "avg-current/bkpt")
	b.ReportMetric(end/n, "avg-endangered/bkpt")
	b.ReportMetric(nonres/n, "avg-nonresident/bkpt")
}

// BenchmarkClassifierOnly isolates the cost of the paper's contribution —
// the data-flow analyses plus per-breakpoint classification — over the
// compiled workloads (the paper notes "neither the execution time of the
// analysis phase nor the storage requirements are significant").
func BenchmarkClassifierOnly(b *testing.B) {
	cfg := compile.O2NoRegAlloc()
	cfg.RegAlloc = true
	var compiled []*compile.Result
	for _, name := range bench.Names {
		res, err := bench.CompileWorkload(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		compiled = append(compiled, res)
	}
	b.ResetTimer()
	classified := 0
	for i := 0; i < b.N; i++ {
		classified = 0
		for _, res := range compiled {
			for _, f := range res.Mach.Funcs {
				a := core.Analyze(f)
				for s := 0; s < f.Decl.NumStmts; s++ {
					cs, ok := a.ClassifyAllAt(s)
					if !ok {
						continue
					}
					classified += len(cs)
				}
			}
		}
	}
	b.ReportMetric(float64(classified), "classifications")
}

// BenchmarkCompileWorkloads measures full-pipeline compilation throughput.
func BenchmarkCompileWorkloads(b *testing.B) {
	for _, name := range bench.Names {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.CompileWorkload(name, compile.O2()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures simulator speed on one workload at O2.
func BenchmarkSimulator(b *testing.B) {
	res, err := bench.CompileWorkload("compress", compile.O2())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bench.RunWorkload(res)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(m.Steps), "vm-instructions")
		}
	}
}
