// Execution hot-path benchmarks: continue-to-breakpoint throughput on
// the predecoded bitmap engine vs. the closure-predicate reference
// engine. The bitmap sub-benchmark asserts via vm.PathStats that it
// never fell back to the slow path — the CI bench smoke runs it for
// exactly that check.
package repro

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/debugger"
	"repro/internal/vm"
)

const hotLoopSrc = `int main() {
	int i;
	int s = 0;
	for (i = 0; i < 100000000; i = i + 1) {
		s = s + i;
		if (s > 1000000000) {
			s = s - 1000000000;
		}
	}
	print(s);
	return s;
}
`

// hotLoopLine returns the 1-based source line of the loop-body
// statement, so the benchmarks break where every iteration stops.
func hotLoopLine(b *testing.B) int {
	b.Helper()
	for i, l := range strings.Split(hotLoopSrc, "\n") {
		if strings.Contains(l, "s = s + i") {
			return i + 1
		}
	}
	b.Fatal("loop body line not found")
	return 0
}

// BenchmarkContinueToBreakpoint measures resuming to a breakpoint in a
// hot loop body: one stop per loop iteration, so the per-instruction
// stop check dominates. MInstr/s is machine instructions executed per
// second of benchmark time.
func BenchmarkContinueToBreakpoint(b *testing.B) {
	res, err := compile.Compile("hot.mc", hotLoopSrc, compile.O2())
	if err != nil {
		b.Fatal(err)
	}
	line := hotLoopLine(b)

	run := func(b *testing.B, ref bool) {
		b.ReportAllocs()
		newSession := func() *debugger.Debugger {
			d, err := debugger.New(res)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.BreakAtLine(line); err != nil {
				b.Fatal(err)
			}
			// Long -benchtime runs push one session far past the default
			// step budget; the budget itself is benchmarked elsewhere.
			d.VM.MaxSteps = 1 << 62
			return d
		}
		d := newSession()
		var instr, prev int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var bp *debugger.Breakpoint
			var err error
			if ref {
				bp, err = d.ContinueRef()
			} else {
				bp, err = d.Continue()
			}
			if err != nil {
				b.Fatal(err)
			}
			instr += d.VM.Steps - prev
			prev = d.VM.Steps
			if bp == nil {
				d = newSession()
				prev = 0
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "MInstr/s")
	}

	b.Run("predicate", func(b *testing.B) { run(b, true) })
	b.Run("bitmap", func(b *testing.B) {
		f0, s0 := vm.PathStats()
		run(b, false)
		f1, s1 := vm.PathStats()
		if s1 != s0 {
			b.Fatalf("bitmap benchmark fell back to the slow predicate path: slowRuns %d -> %d", s0, s1)
		}
		if f1 == f0 {
			b.Fatal("bitmap benchmark never took the fast path")
		}
	})
}

// BenchmarkRunToCompletion measures straight-line execution (Run to
// halt, no breakpoints) on both engines: the pure dispatch-overhead
// comparison, with no stop positions armed.
func BenchmarkRunToCompletion(b *testing.B) {
	src := `int main() {
	int i;
	int s = 0;
	for (i = 0; i < 300000; i = i + 1) {
		s = s + i;
	}
	return s;
}
`
	res, err := compile.Compile("run.mc", src, compile.O2())
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, ref bool) {
		b.ReportAllocs()
		var instr int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := vm.New(res.Mach)
			if err != nil {
				b.Fatal(err)
			}
			if ref {
				err = v.RunUntilFunc(func(vm.Pos) bool { return false })
			} else {
				err = v.Run()
			}
			if err != nil {
				b.Fatal(err)
			}
			instr += v.Steps
		}
		b.StopTimer()
		b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "MInstr/s")
	}
	b.Run("predicate", func(b *testing.B) { run(b, true) })
	b.Run("bitmap", func(b *testing.B) { run(b, false) })
}
