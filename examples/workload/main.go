// Workload: a debugging session on one of the evaluation programs — the
// LZW "compress" workload — compiled with full optimization, register
// allocation and scheduling. This is the scenario the paper's introduction
// motivates: a user debugging production-optimized code, where naive value
// display would silently mislead.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/pkg/minic"
)

func main() {
	src := bench.MustSource("compress")
	art, err := minic.Compile("compress.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	dbg, err := minic.NewSession(art)
	if err != nil {
		log.Fatal(err)
	}

	// Break inside the compressor's hot loop: the hash-probe miss path
	// where a new dictionary entry is inserted (statement 6 of compress:
	// "outcodes[noutcodes] = w").
	bp, err := dbg.BreakAtStmt("compress", 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("breakpoint in compress() at statement %d (line %d)\n\n", bp.Stmt, bp.Line)

	counts := map[minic.State]int{}
	recovered := 0
	hits := 0
	for hits < 50 {
		stopped, err := dbg.Continue()
		if err != nil {
			log.Fatal(err)
		}
		if stopped == nil {
			break
		}
		hits++
		reports, err := dbg.Info()
		if err != nil {
			log.Fatal(err)
		}
		if hits <= 2 {
			fmt.Printf("-- hit %d: info locals --\n", hits)
			for _, r := range reports {
				fmt.Println("  " + r.Display())
			}
			fmt.Println()
		}
		for _, r := range reports {
			counts[r.Class.State]++
			if r.HasRecovered {
				recovered++
			}
		}
	}

	fmt.Printf("aggregate over %d breakpoint hits:\n", hits)
	for _, s := range []minic.State{minic.Current, minic.Uninitialized,
		minic.Nonresident, minic.Noncurrent, minic.Suspect} {
		fmt.Printf("  %-14s %4d\n", s.String(), counts[s])
	}
	fmt.Printf("  %-14s %4d (shown with reconstructed values)\n", "recovered", recovered)

	// Let the program finish and verify it still round-trips.
	for {
		stopped, err := dbg.Continue()
		if err != nil {
			log.Fatal(err)
		}
		if stopped == nil {
			break
		}
	}
	fmt.Printf("\nprogram output:\n%s", dbg.Output())
}
