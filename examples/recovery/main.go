// Recovery: a walkthrough of the paper's §2.5 — when optimization deletes
// a variable entirely, the debugger can often *recover* its expected value
// from compiler temporaries: via aliases left by assignment propagation +
// CSE (the paper's Figure 4), via recorded constants, and via the linear
// formula of a strength-reduced induction variable.
package main

import (
	"fmt"
	"log"

	"repro/internal/opt"
	"repro/pkg/minic"
)

const fig4 = `
int h(int y, int z) {
	int x = y + z;
	int a = x + 1;
	int b = x * 2;
	return a + b;
}
int main() { return h(2, 3); }
`

const constProg = `
int main() {
	int x = 5;
	int y = 1;
	x = y + 6;
	return x;
}
`

const ivProg = `
int a[32];
int main() {
	int i;
	for (i = 0; i < 32; i++) {
		a[i] = i * 3;
	}
	return a[31];
}
`

func main() {
	fmt.Println("### 1. Alias recovery (the paper's Figure 4) ###")
	aliasDemo()
	fmt.Println("\n### 2. Constant recovery ###")
	constDemo()
	fmt.Println("\n### 3. Induction-variable recovery after strength reduction ###")
	ivDemo()
}

func aliasDemo() {
	art, err := minic.Compile("fig4.mc", fig4,
		minic.WithPasses(opt.Options{AssignProp: true, PRE: true, CopyProp: true, DCE: true}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("x = y+z was propagated into its uses, CSE merged the")
	fmt.Println("re-computations into a temp, and DCE deleted x's assignment:")
	fmt.Println(art.Func("h").String())

	dbg, err := minic.NewSession(art)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dbg.BreakAtStmt("h", 2); err != nil {
		log.Fatal(err)
	}
	if bp, err := dbg.Continue(); err != nil || bp == nil {
		log.Fatalf("stop failed: %v", err)
	}
	r, err := dbg.Print("x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("debugger> print x")
	fmt.Println(r.Display())
}

func constDemo() {
	art, err := minic.Compile("const.mc", constProg, minic.WithPasses(opt.Options{DCE: true}))
	if err != nil {
		log.Fatal(err)
	}
	dbg, err := minic.NewSession(art)
	if err != nil {
		log.Fatal(err)
	}
	// Break at "int y = 1": x = 5 was eliminated (overwritten before use)
	// but the marker recorded the constant.
	if _, err := dbg.BreakAtStmt("main", 1); err != nil {
		log.Fatal(err)
	}
	if bp, err := dbg.Continue(); err != nil || bp == nil {
		log.Fatalf("stop failed: %v", err)
	}
	r, err := dbg.Print("x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("debugger> print x   (its dead assignment x=5 was deleted)")
	fmt.Println(r.Display())
}

func ivDemo() {
	// Unrolling duplicates the induction variable's update, which takes it
	// out of strength reduction's single-update pattern — disable it here
	// so the linear-recovery path is visible in isolation.
	opts := opt.O2()
	opts.Unroll = false
	art, err := minic.Compile("iv.mc", ivProg, minic.WithPasses(opts))
	if err != nil {
		log.Fatal(err)
	}
	f := art.Func("main")
	fmt.Println("after strength reduction + LFTR the loop counts in multiples")
	fmt.Println("of the element size; look for !recover annotations:")
	fmt.Println(f.String())

	dbg, err := minic.NewSession(art)
	if err != nil {
		log.Fatal(err)
	}
	// Break inside the loop body.
	if _, err := dbg.BreakAtStmt("main", 3); err != nil {
		log.Fatal(err)
	}
	for hit := 0; hit < 3; hit++ {
		bp, err := dbg.Continue()
		if err != nil {
			log.Fatal(err)
		}
		if bp == nil {
			fmt.Println("(program exited)")
			return
		}
		r, err := dbg.Print("i")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hit %d: debugger> print i\n%s\n", hit+1, r.Display())
	}
}
