// Deadcode: a walkthrough of the paper's Figure 3 — partial dead code
// elimination sinks an assignment into the branch that needs it; between
// the deletion point and the sunk copy the variable is stale (noncurrent),
// after the sunk copy it is current, and at the join it is suspect. The
// example also runs the program under the debugger to show the stale
// runtime value being reported with a warning.
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/opt"
	"repro/pkg/minic"
)

const program = `
int g(int c, int a, int b) {
	int x = a * b;
	int r = 0;
	if (c) {
		r = x;
	}
	return r + a;
}
int main() { return g(0, 5, 4); }
`

func main() {
	art, err := minic.Compile("fig3.mc", program, minic.WithPasses(opt.Options{PDCE: true, DCE: true}))
	if err != nil {
		log.Fatal(err)
	}
	f := art.Func("g")

	fmt.Println("=== optimized machine code (note !sunk and the markdead marker) ===")
	fmt.Println(f.String())

	a := art.Analysis(f)
	var x *ast.Object
	for _, v := range f.Decl.Locals {
		if v.Name == "x" {
			x = v
		}
	}

	fmt.Println("=== static classification of x at every breakpoint ===")
	for s := 0; s < f.Decl.NumStmts; s++ {
		c, ok := a.ClassifyAt(s, x)
		if !ok {
			continue
		}
		fmt.Printf("stmt %d: x is %-10s %s\n", s, c.State, c.Why)
	}

	fmt.Println()
	fmt.Println("=== live session: main calls g(0, 5, 4) — the else path ===")
	dbg, err := minic.NewSession(art)
	if err != nil {
		log.Fatal(err)
	}
	// Break at "r = 0" (statement 1), between the deleted assignment and
	// the sunk copy.
	if _, err := dbg.BreakAtStmt("g", 1); err != nil {
		log.Fatal(err)
	}
	stopped, err := dbg.Continue()
	if err != nil {
		log.Fatal(err)
	}
	if stopped == nil {
		log.Fatal("did not stop")
	}
	r, err := dbg.Print("x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("debugger> print x")
	fmt.Println(r.Display())
	fmt.Println()
	fmt.Println("The source says x should be a*b = 20 here, but the optimized code")
	fmt.Println("never computes it on this path — the debugger warns instead of")
	fmt.Println("misleading the user with the stale register content.")
}
