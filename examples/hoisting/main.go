// Hoisting: a walkthrough of the paper's Figure 2 — how partial redundancy
// elimination endangers a variable by executing its assignment prematurely,
// and how the hoist-reach analysis classifies it as noncurrent, suspect, or
// current at different breakpoints.
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/mach"
	"repro/internal/opt"
	"repro/pkg/minic"
)

// The Figure 2 pattern: x = y+z appears on one arm of a branch and again
// after the join. PRE inserts a hoisted copy on the other arm and deletes
// the join occurrence as redundant.
const program = `
int f(int c, int y, int z) {
	int x = 0;
	if (c) {
		x = y + z;
	} else {
		x = 1;
	}
	x = y + z;
	return x;
}
int main() { return f(1, 2, 3); }
`

func main() {
	art, err := minic.Compile("fig2.mc", program, minic.WithPasses(opt.Options{PRE: true}))
	if err != nil {
		log.Fatal(err)
	}
	res := art.Result()
	f := art.Func("f")

	fmt.Println("=== optimized machine code (note !hoisted and the markavail marker) ===")
	fmt.Println(f.String())

	a := art.Analysis(f)
	var x *ast.Object
	for _, v := range f.Decl.Locals {
		if v.Name == "x" {
			x = v
		}
	}

	fmt.Println("=== classification of x at every breakpoint ===")
	stmts := ast.StmtsByID(f.Decl)
	for s := 0; s < f.Decl.NumStmts; s++ {
		c, ok := a.ClassifyAt(s, x)
		if !ok {
			continue
		}
		line := 0
		if stmts[s] != nil {
			line = res.File.Position(stmts[s].Span().Start).Line
		}
		fmt.Printf("stmt %d (line %2d): x is %-10s", s, line, c.State)
		if c.Cause != core.NoCause {
			fmt.Printf(" (due to %s)", c.Cause)
		}
		fmt.Println()
		if c.Why != "" {
			fmt.Printf("    %s\n", c.Why)
		}
	}

	fmt.Println()
	fmt.Println("Compare with the paper's Figure 2:")
	fmt.Println("  - inside the arm that received the hoisted assignment, x is noncurrent;")
	fmt.Println("  - at the join statement (before the deleted redundant copy), x is suspect;")
	fmt.Println("  - after the redundant copy's marker, x is current again.")

	// Show the marker that bounds the endangerment region.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mach.MARKAVAIL {
				fmt.Printf("\nmarker found: %q — it kills the hoist reach of x\n", in.String())
			}
		}
	}
}
