// Quickstart: compile a MiniC program with full optimization, run it under
// the source-level debugger, and see the endangered-variable warnings of
// the paper in action.
package main

import (
	"fmt"
	"log"

	"repro/pkg/minic"
)

const program = `
int squareSum(int n) {
	int total = 0;
	int i;
	for (i = 0; i < n; i++) {
		int sq = i * i;
		total = total + sq;
	}
	return total;
}

int main() {
	int result = squareSum(10);
	print("sum of squares = ", result, "\n");
	return result;
}
`

func main() {
	// Compile at -O2 with register allocation and scheduling: the exact
	// code a user would ship — the debugger is non-invasive and gets no
	// special code generation.
	art, err := minic.Compile("quickstart.mc", program)
	if err != nil {
		log.Fatal(err)
	}

	dbg, err := minic.NewSession(art)
	if err != nil {
		log.Fatal(err)
	}

	// Break inside the loop (line 7: total = total + sq).
	bp, err := dbg.BreakAtLine(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("breakpoint set at %s, statement %d (line %d)\n\n", bp.Fn.Name, bp.Stmt, bp.Line)

	// Stop at the first three hits and inspect every variable in scope.
	for hit := 1; hit <= 3; hit++ {
		stopped, err := dbg.Continue()
		if err != nil {
			log.Fatal(err)
		}
		if stopped == nil {
			break
		}
		fmt.Printf("-- hit %d --\n", hit)
		reports, err := dbg.Info()
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range reports {
			fmt.Println("  " + r.Display())
		}
	}

	// Run to completion.
	for {
		stopped, err := dbg.Continue()
		if err != nil {
			log.Fatal(err)
		}
		if stopped == nil {
			break
		}
	}
	fmt.Printf("\nprogram output: %s", dbg.Output())
}
