// SROA: a walkthrough of debugging a decomposed aggregate. Scalar
// replacement of aggregates splits a non-address-taken struct into one
// scalar per field, after which each field is optimized — and endangered —
// independently. The debugger therefore classifies *per field*: at one
// breakpoint a struct can be simultaneously current in one field, dead but
// recoverable in another, and noncurrent in a third. Printing the whole
// aggregate reports it as partially resident and itemizes the fields.
package main

import (
	"fmt"
	"log"

	"repro/pkg/minic"
)

// f's struct ends up with three different per-field fates at the print:
//   - a.sum      written every loop iteration, live at the stop: current;
//   - a.bias     only ever holds 20 and every read was constant-folded, so
//     its store is deleted; the marker records the constant:
//     noncurrent but *recovered*;
//   - a.scratch  its final assignment (a.sum * 5) is dead code, deleted
//     with no recoverable location: noncurrent, stale value.
const prog = `
struct Acc { int sum; int bias; int scratch; };

int f(int n) {
  struct Acc a;
  int i;
  a.sum = 0;
  a.bias = 20;
  a.scratch = n * 3;
  for (i = 0; i < n; i = i + 1) {
    a.sum = a.sum + a.scratch + i;
  }
  a.scratch = a.sum * 5;
  print(a.sum);
  return a.sum;
}

int main() { return f(7); }
`

func main() {
	// Figure 5(a) configuration: full scalar optimization, no register
	// allocator, so every surviving value keeps its own location and the
	// per-field verdicts are purely the scalar pipeline's doing.
	art, err := minic.Compile("sroa.mc", prog,
		minic.WithOptLevel(2), minic.WithRegAlloc(false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("### SROA splits a into a.sum / a.bias / a.scratch ###")
	fmt.Println("(note the per-field member variables and the markers left")
	fmt.Println("where eliminated field assignments used to be)")
	fmt.Println(art.Func("f").String())

	dbg, err := minic.NewSession(art)
	if err != nil {
		log.Fatal(err)
	}
	// Break at the print statement, after the dead final store to scratch.
	if _, err := dbg.BreakAtLine(13); err != nil {
		log.Fatal(err)
	}
	if bp, err := dbg.Continue(); err != nil || bp == nil {
		log.Fatalf("stop failed: %v", err)
	}

	fmt.Println("### one struct, three verdicts ###")
	for _, name := range []string{"a", "a.sum", "a.bias", "a.scratch"} {
		r, err := dbg.Print(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("debugger> print %s\n%s\n", name, r.Display())
	}
}
