// mcdbg is the source-level debugger for optimized MiniC programs: the
// command-line front end of the paper's debugger model. It compiles the
// program with full optimization (configurable), runs it on the simulator,
// and supports breakpoints and variable inspection with the endangered-
// variable warnings of the paper.
//
// Usage:
//
//	mcdbg [-O0|-noregalloc|-nosched] file.mc command...
//
// Commands are executed in order (a scripted session):
//
//	break <func> <stmt>   set a breakpoint at a statement ID
//	breakline <line>      set a breakpoint at a source line
//	continue              run to the next breakpoint (or exit)
//	step                  advance to the next source statement
//	print <var>           display one variable with classification
//	info                  display every variable in scope
//	where                 show the current stop
//	run                   continue to program exit
//
// Example:
//
//	mcdbg prog.mc breakline 12 continue print x info run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/bench"
	"repro/pkg/minic"
)

func main() {
	o0 := flag.Bool("O0", false, "debug unoptimized code")
	noRA := flag.Bool("noregalloc", false, "skip register allocation")
	noSched := flag.Bool("nosched", false, "skip instruction scheduling")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mcdbg [flags] file.mc command...")
		os.Exit(2)
	}
	name := flag.Arg(0)
	src, err := readSource(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opts := []minic.Option{minic.WithOptLevel(2)}
	if *o0 {
		opts = []minic.Option{minic.WithOptLevel(0)}
	}
	if *noRA {
		opts = append(opts, minic.WithRegAlloc(false))
	}
	if *noSched {
		opts = append(opts, minic.WithSched(false))
	}

	art, err := minic.Compile(name, src, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d, err := minic.NewSession(art)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	args := flag.Args()[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "break":
			if i+2 >= len(args) {
				fail("break needs <func> <stmt>")
			}
			stmt, err := strconv.Atoi(args[i+2])
			if err != nil {
				fail("bad statement id %q", args[i+2])
			}
			bp, err := d.BreakAtStmt(args[i+1], stmt)
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("breakpoint at %s stmt %d (line %d)\n", bp.Fn.Name, bp.Stmt, bp.Line)
			i += 2

		case "breakline":
			if i+1 >= len(args) {
				fail("breakline needs <line>")
			}
			line, err := strconv.Atoi(args[i+1])
			if err != nil {
				fail("bad line %q", args[i+1])
			}
			bp, err := d.BreakAtLine(line)
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("breakpoint at %s stmt %d (line %d)\n", bp.Fn.Name, bp.Stmt, bp.Line)
			i++

		case "continue":
			bp, err := d.Continue()
			if err != nil {
				fail("%v", err)
			}
			if bp == nil {
				fmt.Printf("program exited; output:\n%s", d.Output())
			} else {
				fmt.Printf("stopped at %s stmt %d (line %d)\n", bp.Fn.Name, bp.Stmt, bp.Line)
			}

		case "step":
			bp, err := d.Step()
			if err != nil {
				fail("%v", err)
			}
			if bp == nil {
				fmt.Printf("program exited; output:\n%s", d.Output())
			} else {
				fmt.Printf("step: %s stmt %d (line %d)\n", bp.Fn.Name, bp.Stmt, bp.Line)
			}

		case "print":
			if i+1 >= len(args) {
				fail("print needs <var>")
			}
			r, err := d.Print(args[i+1])
			if err != nil {
				fail("%v", err)
			}
			fmt.Println(r.Display())
			i++

		case "info":
			rs, err := d.Info()
			if err != nil {
				fail("%v", err)
			}
			for _, r := range rs {
				fmt.Println("  " + r.Display())
			}

		case "where":
			if bp := d.Stopped(); bp != nil {
				fmt.Printf("at %s stmt %d (line %d)\n", bp.Fn.Name, bp.Stmt, bp.Line)
			} else {
				fmt.Println("not stopped")
			}

		case "run":
			for {
				bp, err := d.Continue()
				if err != nil {
					fail("%v", err)
				}
				if bp == nil {
					break
				}
			}
			fmt.Printf("program exited; output:\n%s", d.Output())

		default:
			fail("unknown command %q", args[i])
		}
	}
}

func readSource(name string) (string, error) {
	if b, err := os.ReadFile(name); err == nil {
		return string(b), nil
	}
	if s, err := bench.Source(name); err == nil {
		return s, nil
	}
	return "", fmt.Errorf("mcdbg: cannot open %q", name)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
