// mcbench regenerates every table and figure of the paper's evaluation
// section over the eight SPEC92-analog workloads.
//
// Usage:
//
//	mcbench                 regenerate everything
//	mcbench -table 1|2|3|4  one table
//	mcbench -figure 5a|5b   one figure
//	mcbench -ablation       marker-ablation comparison (extension)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/pkg/minic"
)

func main() {
	table := flag.String("table", "", "regenerate one table (1, 2, 3, 4)")
	figure := flag.String("figure", "", "regenerate one figure (5a, 5b)")
	ablation := flag.Bool("ablation", false, "marker ablation study")
	recovery := flag.Bool("recovery", false, "recovery mechanism breakdown (extension)")
	causes := flag.Bool("causes", false, "endangerment cause breakdown (extension)")
	passes := flag.Bool("passes", false, "per-pass cycle ablation (slow; extension)")
	flag.Parse()

	all := *table == "" && *figure == "" && !*ablation && !*recovery && !*causes && !*passes

	if all || *table == "1" {
		printTable1()
	}
	if all || *table == "2" {
		rows, err := bench.Table2()
		check(err)
		fmt.Println(bench.RenderTable2(rows))
	}
	if all || *table == "3" {
		rows, err := bench.Table3()
		check(err)
		fmt.Println(bench.RenderTable3(rows))
	}
	if all || *table == "4" {
		rows, err := bench.Table4()
		check(err)
		fmt.Println(bench.RenderTable4(rows))
	}
	if all || *figure == "5a" {
		rows, err := bench.Figure5a()
		check(err)
		fmt.Println(bench.RenderFigure5("Figure 5(a): global optimizations only (no register allocation)", rows))
	}
	if all || *figure == "5b" {
		rows, err := bench.Figure5b()
		check(err)
		fmt.Println(bench.RenderFigure5("Figure 5(b): global optimizations and register allocation", rows))
	}
	if all || *recovery {
		rows, err := bench.Figure5a()
		check(err)
		fmt.Println(bench.RenderRecovery(rows))
	}
	if all || *causes {
		rows, err := bench.CauseBreakdown()
		check(err)
		fmt.Println(bench.RenderCauses(rows))
	}
	if all || *ablation {
		runAblation()
	}
	if *passes { // not part of the default run: ~1 minute
		rows, err := bench.PassAblation()
		check(err)
		fmt.Println(bench.RenderPassAblation(rows))
	}
}

func printTable1() {
	fmt.Println("Table 1: Optimizations performed by mcc (cf. cmcc).")
	for _, line := range []string{
		"loop unrolling and peeling           (internal/opt: Unroll, Peel)",
		"linear function test replacement     (internal/opt: StrengthReduce/lftr)",
		"induction variable simplification    (internal/opt: StrengthReduce)",
		"constant propagation and folding     (internal/opt: ConstFold, ConstProp)",
		"induction variable elimination       (internal/opt: StrengthReduce + DCE)",
		"assignment propagation               (internal/opt: AssignProp)",
		"partial dead code elimination        (internal/opt: PDCE)",
		"dead assignment elimination          (internal/opt: DCE, FaintDCE)",
		"partial redundancy elimination       (internal/opt: PRE)",
		"loop-invariant code motion           (internal/opt: LICM)",
		"strength reduction                   (internal/opt: ConstFold mul->shl, StrengthReduce)",
		"branch optimizations                 (internal/opt: BranchOpt, LoopInvert)",
		"global register allocation           (internal/regalloc: graph coloring)",
		"register coalescing                  (internal/regalloc: Briggs-conservative)",
		"instruction scheduling               (internal/sched: list scheduling)",
	} {
		fmt.Println("  " + line)
	}
	fmt.Println()
}

// runAblation compares the classifier with and without the §3 marker
// bookkeeping: without markers the debugger silently loses endangerment —
// exactly the "debugger inaccurate" behavior of the vendor tools quoted in
// the paper's introduction.
func runAblation() {
	fmt.Println("Ablation: endangered variables visible to the debugger, with vs without markers.")
	fmt.Printf("%-10s %18s %21s\n", "Program", "with markers", "without markers")
	cfg := minic.ResolveConfig(minic.WithRegAlloc(false), minic.WithSched(false))
	ablcfg := minic.ResolveConfig(minic.WithRegAlloc(false), minic.WithSched(false), minic.WithMarkers(false))
	for _, name := range bench.Names {
		with, err := bench.ClassifyProgram(name, cfg)
		check(err)
		without, err := bench.ClassifyProgram(name, ablcfg)
		check(err)
		fmt.Printf("%-10s %15.2f/bp %18.2f/bp\n", name, with.Endangered, without.Endangered)
	}
	fmt.Println("\n(without markers the variables are still wrong at runtime — the debugger")
	fmt.Println(" just can no longer warn the user; every silent entry is a potential")
	fmt.Println(" misleading debugging session)")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
