// mcc is the MiniC optimizing compiler driver. It compiles a .mc file
// through the full pipeline and can dump every representation level,
// run the program on the simulator, and report the per-breakpoint
// debuggability statistics of the paper.
//
// Usage:
//
//	mcc [flags] file.mc
//
// Flags:
//
//	-O0 / -O1 / -O2    optimization level (default -O2)
//	-noregalloc        skip register allocation (Figure 5(a) mode)
//	-nosched           skip instruction scheduling
//	-nomarkers         suppress debugger marker bookkeeping (ablation)
//	-dump-ast          print the AST statement tree
//	-dump-ir           print the optimized mid-level IR
//	-dump-mach         print the final machine code
//	-run               execute on the simulator and print output + cycles
//	-debugstats        print the per-breakpoint classification summary
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ast"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/pkg/minic"
)

func main() {
	o0 := flag.Bool("O0", false, "disable optimization")
	o1 := flag.Bool("O1", false, "local optimizations only")
	o2 := flag.Bool("O2", true, "full global optimization (default)")
	noRA := flag.Bool("noregalloc", false, "skip register allocation")
	noSched := flag.Bool("nosched", false, "skip instruction scheduling")
	noMarkers := flag.Bool("nomarkers", false, "suppress debugger markers (ablation)")
	dumpAST := flag.Bool("dump-ast", false, "print statement tree")
	dumpIR := flag.Bool("dump-ir", false, "print optimized IR")
	dumpMach := flag.Bool("dump-mach", false, "print machine code")
	run := flag.Bool("run", false, "execute on the simulator")
	stats := flag.Bool("debugstats", false, "print classification summary")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcc [flags] file.mc (or a workload name: li, eqntott, ...)")
		os.Exit(2)
	}
	name := flag.Arg(0)
	src, err := readSource(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opts := []minic.Option{minic.WithOptLevel(2)}
	switch {
	case *o0:
		opts = []minic.Option{minic.WithOptLevel(0)}
	case *o1:
		opts = []minic.Option{minic.WithOptLevel(1)}
	case *o2:
		// default
	}
	if *noRA {
		opts = append(opts, minic.WithRegAlloc(false))
	}
	if *noSched {
		opts = append(opts, minic.WithSched(false))
	}
	if *noMarkers {
		opts = append(opts, minic.WithMarkers(false))
	}

	art, err := minic.Compile(name, src, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := art.Result()

	if *dumpAST {
		for _, fn := range res.Sem.Funcs {
			fmt.Printf("func %s: %d statements, %d locals\n", fn.Name, fn.NumStmts, len(fn.Locals))
			for id, s := range ast.StmtsByID(fn) {
				if s == nil {
					continue
				}
				pos := res.File.Position(s.Span().Start)
				fmt.Printf("  s%-3d %s:%d  %T\n", id, pos.Filename, pos.Line, s)
			}
		}
	}
	if *dumpIR {
		fmt.Print(res.IR.String())
	}
	if *dumpMach {
		fmt.Print(res.Mach.String())
	}

	if *stats {
		printStats(art)
	}

	if *run {
		m, err := art.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(m.Output())
		fmt.Printf("[exit %d, %d cycles, %d instructions]\n", m.ExitValue(), m.Cycles, m.Steps)
	}
}

// readSource loads a file, or a named built-in workload.
func readSource(name string) (string, error) {
	if b, err := os.ReadFile(name); err == nil {
		return string(b), nil
	}
	if s, err := bench.Source(name); err == nil {
		return s, nil
	}
	return "", fmt.Errorf("mcc: cannot open %q (not a file or built-in workload)", name)
}

func printStats(art *minic.Artifact) {
	fmt.Println("per-breakpoint variable classification (averages):")
	fmt.Printf("%-12s %8s %8s %10s %8s %11s %9s\n",
		"function", "uninit", "current", "noncurrent", "suspect", "nonresident", "recovered")
	for _, f := range art.Funcs() {
		a := art.Analysis(f)
		var uninit, cur, noncur, susp, nonres, rec, bps int
		for s := 0; s < f.Decl.NumStmts; s++ {
			cs, ok := a.ClassifyAllAt(s)
			if !ok {
				continue
			}
			bps++
			for _, c := range cs {
				if c.Recovered != nil {
					rec++
				}
				switch c.State {
				case core.Uninitialized:
					uninit++
				case core.Current:
					cur++
				case core.Noncurrent:
					noncur++
				case core.Suspect:
					susp++
				case core.Nonresident:
					nonres++
				}
			}
		}
		if bps == 0 {
			continue
		}
		n := float64(bps)
		fmt.Printf("%-12s %8.2f %8.2f %10.2f %8.2f %11.2f %9.2f\n",
			f.Name, float64(uninit)/n, float64(cur)/n, float64(noncur)/n,
			float64(susp)/n, float64(nonres)/n, float64(rec)/n)
	}
}
