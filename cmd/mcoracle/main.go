// mcoracle is the differential-oracle CLI: the command-line face of
// internal/oracle's O0-vs-optimized validation engine and coverage
// sweeps.
//
// Usage:
//
//	mcoracle                         corpus sweep (200 seeds, O2 + O2NoRegAlloc)
//	mcoracle -seeds 50 -minimize     bounded sweep, ddmin-minimized repros
//	mcoracle -coverage               corpus coverage table per config
//	mcoracle -pass-coverage          coverage table per ablated pass
//	mcoracle -workloads              coverage table per bench workload
//	mcoracle -addr host:port         remote differential against a live mcd
//	mcoracle -addr host:port -soak N scripted-client soak via the load generator
//
// The corpus sweep exits nonzero when any defect is recorded and writes
// each mismatch (with its minimized repro when -minimize is set) to the
// file named by -out, which is what the CI smoke step uploads as an
// artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/coverage"
	"repro/internal/loadgen"
	"repro/internal/oracle"
	"repro/pkg/minic"
)

func main() {
	seeds := flag.Int("seeds", 200, "number of randprog seeds to sweep")
	maxStops := flag.Int("max-stops", 200, "stop budget per trace")
	minimize := flag.Bool("minimize", false, "ddmin-minimize each failing seed's source")
	out := flag.String("out", "oracle_failures.txt", "file to write mismatch details to")
	covFlag := flag.Bool("coverage", false, "print the per-config corpus coverage table")
	passCov := flag.Bool("pass-coverage", false, "print the per-pass coverage ablation table")
	workloads := flag.Bool("workloads", false, "print the per-workload coverage table")
	addr := flag.String("addr", "", "remote mode: address of a live mcd daemon")
	token := flag.String("token", "", "auth token for the remote daemon")
	soak := flag.Int("soak", 0, "remote mode: scripted-client soak iterations instead of the differential")
	flag.Parse()

	switch {
	case *addr != "":
		remoteMain(*addr, *token, *seeds, *maxStops, *soak)
	case *passCov:
		rows, err := oracle.PassCoverage(seedList(min(*seeds, 20)))
		check(err)
		fmt.Print(coverage.FormatTable(rows))
	case *workloads:
		rows, err := oracle.WorkloadCoverage()
		check(err)
		fmt.Print(coverage.FormatTable(rows))
	default:
		corpusMain(*seeds, *maxStops, *minimize, *covFlag, *out)
	}
}

// corpusMain runs the in-process differential sweep and coverage
// aggregation.
func corpusMain(seeds, maxStops int, minimize, covFlag bool, out string) {
	res, err := oracle.Run(oracle.Options{
		Seeds:    seedList(seeds),
		MaxStops: maxStops,
		Minimize: minimize,
		Progress: func(seed int64, defects int) {
			if seed%50 == 49 {
				fmt.Fprintf(os.Stderr, "  seed %d, %d defects so far\n", seed, defects)
			}
		},
	})
	check(err)
	fmt.Printf("totals: %+v\n", res.Totals)
	if covFlag || len(res.Mismatches) == 0 {
		var rows []coverage.Row
		for _, name := range []string{"O0", "O2", "O2NoRegAlloc"} {
			if c, ok := res.Coverage[name]; ok {
				rows = append(rows, coverage.Row{Label: name, Counts: c})
			}
		}
		fmt.Print(coverage.FormatTable(rows))
	}
	if len(res.Mismatches) == 0 {
		fmt.Println("PASS: no mismatches")
		return
	}
	var b strings.Builder
	for _, m := range res.Mismatches {
		fmt.Fprintf(&b, "%s\n", m)
		if m.Minimized != "" {
			fmt.Fprintf(&b, "--- minimized repro ---\n%s\n", m.Minimized)
		}
	}
	if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", out, err)
	}
	fmt.Fprintf(os.Stderr, "FAIL: %d mismatches (details in %s)\n", len(res.Mismatches), out)
	os.Exit(1)
}

// remoteMain drives the remote differential (or the scripted soak)
// against a live daemon.
func remoteMain(addr, token string, seeds, maxStops, soak int) {
	var opts []minic.DialOption
	if token != "" {
		opts = append(opts, minic.WithAuthToken(token))
	}
	opts = append(opts, minic.WithRetry(minic.RetryPolicy{}))
	c, err := minic.Dial("tcp", addr, opts...)
	check(err)
	defer c.Close()

	if soak > 0 {
		soakMain(c, soak)
		return
	}
	res, err := oracle.CheckRemote(c, oracle.RemoteOptions{Seeds: seedList(seeds), MaxStops: maxStops})
	check(err)
	fmt.Printf("remote differential: %d seeds, %d transcript lines, %d coverage rows compared\n",
		res.Seeds, res.LinesCompared, res.CoverageRows)
	if len(res.Mismatches) == 0 {
		fmt.Println("PASS: daemon is transparent")
		return
	}
	for _, m := range res.Mismatches {
		fmt.Fprintf(os.Stderr, "MISMATCH %s\n", m)
	}
	os.Exit(1)
}

// soakMain reuses the chaos load generator's scripted client: every
// iteration must produce the byte-identical canonical transcript.
func soakMain(c *minic.Client, iterations int) {
	var ref []string
	for i := 0; i < iterations; i++ {
		tr, err := loadgen.RunIteration(c, loadgen.DefaultProgram("mcoracle-soak"))
		check(err)
		if i == 0 {
			ref = tr
			continue
		}
		if strings.Join(tr, "\n") != strings.Join(ref, "\n") {
			fmt.Fprintf(os.Stderr, "FAIL: iteration %d transcript diverged\nref: %v\ngot: %v\n", i, ref, tr)
			os.Exit(1)
		}
	}
	fmt.Printf("PASS: %d identical soak iterations\n", iterations)
}

func seedList(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
