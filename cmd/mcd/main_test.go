package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/pkg/minic"
)

// The Figure 3 program: partial dead-code elimination leaves x stale on
// the else path, so the debugger must print it with a warning.
const prog = `int g(int c, int a, int b) {
	int x = a * b;
	int r = 0;
	if (c) {
		r = x;
	}
	return r + a;
}
int main() { return g(0, 5, 4); }`

// runTranscript drives one scripted connection through the server, the
// way the mcd binary does on stdin/stdout, and decodes the responses.
func runTranscript(t *testing.T, s *server.Server, reqs []server.Request) []server.Response {
	t.Helper()
	var in strings.Builder
	enc := json.NewEncoder(&in)
	for _, r := range reqs {
		if err := enc.Encode(&r); err != nil {
			t.Fatal(err)
		}
	}
	var out strings.Builder
	if err := s.Serve(strings.NewReader(in.String()), &out); err != nil {
		t.Fatalf("serve: %v", err)
	}
	var resps []server.Response
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		var r server.Response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		resps = append(resps, r)
	}
	return resps
}

// TestScriptedTranscript is the protocol golden test: a scripted
// compile → open-session → break → continue → print → info → stats
// conversation, with every classification warning identical to what the
// command-line debugger (mcdbg) prints for the same program and commands.
func TestScriptedTranscript(t *testing.T) {
	s := server.New(server.Options{})
	stmt := 1
	resps := runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "compile", Name: "fig3.mc", Src: prog},
		{ID: 2, Cmd: "compile", Name: "fig3.mc", Src: prog}, // must hit the cache
	})
	if len(resps) != 2 {
		t.Fatalf("got %d responses", len(resps))
	}
	if !resps[0].OK || resps[0].Cached || resps[0].Artifact == "" {
		t.Fatalf("compile = %+v", resps[0])
	}
	if !resps[1].OK || !resps[1].Cached || resps[1].Artifact != resps[0].Artifact {
		t.Fatalf("re-compile = %+v, want cache hit on %s", resps[1], resps[0].Artifact)
	}
	art := resps[0].Artifact

	resps = runTranscript(t, s, []server.Request{
		{ID: 3, Cmd: "open-session", Artifact: art},
	})
	sess, handle := resps[0].Session, resps[0].Handle
	if sess == "" || handle == "" {
		t.Fatalf("open-session = %+v", resps[0])
	}

	// Each runTranscript call is its own connection, so the session is
	// detached between them; the first command presents the handle to
	// reattach (capability-style), the rest ride the new ownership.
	resps = runTranscript(t, s, []server.Request{
		{ID: 4, Cmd: "break", Session: sess, Handle: handle, Func: "g", Stmt: &stmt},
		{ID: 5, Cmd: "continue", Session: sess},
		{ID: 6, Cmd: "print", Session: sess, Var: "x"},
		{ID: 7, Cmd: "info", Session: sess},
		{ID: 8, Cmd: "stats"},
	})
	if len(resps) != 5 {
		t.Fatalf("got %d responses", len(resps))
	}
	brk, cont, prnt, info, stats := resps[0], resps[1], resps[2], resps[3], resps[4]
	if !brk.OK || brk.Stop == nil || brk.Stop.Func != "g" || brk.Stop.Stmt != 1 {
		t.Fatalf("break = %+v", brk)
	}
	if !cont.OK || cont.Stop == nil || cont.Exited {
		t.Fatalf("continue = %+v", cont)
	}
	if !prnt.OK || len(prnt.Vars) != 1 {
		t.Fatalf("print = %+v", prnt)
	}
	if !info.OK || len(info.Vars) == 0 {
		t.Fatalf("info = %+v", info)
	}
	if !stats.OK || stats.Stats == nil {
		t.Fatalf("stats = %+v", stats)
	}
	if st := stats.Stats; st.CacheHits < 1 || st.CacheMisses < 1 || st.SessionsActive != 1 ||
		st.AnalysesBuilt < 1 || st.CyclesExecuted <= 0 {
		t.Fatalf("stats snapshot = %+v", st)
	}
	// The unified store's view arrives in the same snapshot: memory
	// accounting (artifact + analyses), shard count, and an idle spill
	// tier for this memory-only server.
	if st := stats.Stats; st.CacheMemoryBytes <= 0 || st.AnalysisBytes <= 0 ||
		st.AnalysisBytes >= st.CacheMemoryBytes || st.CacheShards < 1 ||
		st.SessionsReaped != 0 || st.SpillHits != 0 || st.SpillWrites != 0 {
		t.Fatalf("store stats snapshot = %+v", st)
	}

	// The same session driven through the debugger library exactly the
	// way cmd/mcdbg does it: identical commands must yield identical
	// warning-annotated displays.
	want := mcdbgDisplays(t)
	if got := prnt.Vars[0].Display; got != want["x"] {
		t.Errorf("print x over protocol = %q, mcdbg says %q", got, want["x"])
	}
	for _, v := range info.Vars {
		if got := v.Display; got != want[v.Name] {
			t.Errorf("info %s over protocol = %q, mcdbg says %q", v.Name, got, want[v.Name])
		}
	}
	// This program's point: x must not be displayed as a bare value —
	// depending on the pipeline it is either warned about or recovered.
	if d := prnt.Vars[0].Display; !strings.Contains(d, "WARNING") &&
		!strings.Contains(d, "recovered") && !strings.Contains(d, "unavailable") {
		t.Errorf("x displayed with no annotation: %q", d)
	}
}

// The SROA walkthrough program (examples/sroa): one struct whose three
// fields end at the print with three different verdicts — sum current,
// bias eliminated but recovered as the constant 20, scratch noncurrent
// with no recovery.
const sroaProg = `
struct Acc { int sum; int bias; int scratch; };

int f(int n) {
  struct Acc a;
  int i;
  a.sum = 0;
  a.bias = 20;
  a.scratch = n * 3;
  for (i = 0; i < n; i = i + 1) {
    a.sum = a.sum + a.scratch + i;
  }
  a.scratch = a.sum * 5;
  print(a.sum);
  return a.sum;
}

int main() { return f(7); }
`

// TestSROATranscript is the aggregate-debugging golden transcript: the
// Figure 5(a) configuration (O2, no regalloc) over the wire, stopping at
// the print and asserting one field current, one endangered-with-recovery,
// one noncurrent — each display identical to the library session (the way
// mcdbg renders it), the aggregate report carrying nested per-field
// sub-reports, and the server's SROA counters advancing.
func TestSROATranscript(t *testing.T) {
	s := server.New(server.Options{})
	noRegs := false
	resps := runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "compile", Name: "sroa.mc", Src: sroaProg,
			Config: &server.ConfigSpec{Opt: "O2", RegAlloc: &noRegs}},
	})
	if len(resps) != 1 || !resps[0].OK || resps[0].Artifact == "" {
		t.Fatalf("compile = %+v", resps)
	}
	art := resps[0].Artifact

	resps = runTranscript(t, s, []server.Request{{ID: 2, Cmd: "open-session", Artifact: art}})
	sess, handle := resps[0].Session, resps[0].Handle
	if sess == "" || handle == "" {
		t.Fatalf("open-session = %+v", resps[0])
	}

	resps = runTranscript(t, s, []server.Request{
		{ID: 3, Cmd: "break", Session: sess, Handle: handle, Line: 13},
		{ID: 4, Cmd: "continue", Session: sess},
		{ID: 5, Cmd: "print", Session: sess, Var: "a"},
		{ID: 6, Cmd: "print", Session: sess, Var: "a.sum"},
		{ID: 7, Cmd: "print", Session: sess, Var: "a.bias"},
		{ID: 8, Cmd: "print", Session: sess, Var: "a.scratch"},
		{ID: 9, Cmd: "stats"},
	})
	if len(resps) != 7 {
		t.Fatalf("got %d responses", len(resps))
	}
	cont := resps[1]
	if !cont.OK || cont.Stop == nil || cont.Exited || cont.Stop.Func != "f" {
		t.Fatalf("continue = %+v", cont)
	}

	// The same session through the library, the way cmd/mcdbg drives it:
	// wire displays must be identical.
	a, err := minic.Compile("sroa.mc", sroaProg, minic.WithOptLevel(2), minic.WithRegAlloc(false))
	if err != nil {
		t.Fatal(err)
	}
	d, err := minic.NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BreakAtLine(13); err != nil {
		t.Fatal(err)
	}
	if bp, err := d.Continue(); err != nil || bp == nil {
		t.Fatalf("continue: %v %v", bp, err)
	}
	for i, name := range []string{"a", "a.sum", "a.bias", "a.scratch"} {
		r := resps[2+i]
		if !r.OK || len(r.Vars) != 1 {
			t.Fatalf("print %s = %+v", name, r)
		}
		want, err := d.Print(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Vars[0].Display; got != want.Display() {
			t.Errorf("print %s over protocol = %q, mcdbg says %q", name, got, want.Display())
		}
	}

	// The three verdicts of the walkthrough, pinned.
	agg, sum, bias, scratch := resps[2].Vars[0], resps[3].Vars[0], resps[4].Vars[0], resps[5].Vars[0]
	if sum.State != "current" || strings.Contains(sum.Display, "WARNING") {
		t.Errorf("a.sum should be current: %+v", sum)
	}
	if !strings.Contains(bias.Display, "recovered") || !strings.Contains(bias.Display, "constant 20") {
		t.Errorf("a.bias should be recovered as constant 20: %q", bias.Display)
	}
	if scratch.State != "noncurrent" || !strings.Contains(scratch.Display, "WARNING: noncurrent") ||
		strings.Contains(scratch.Display, "recovered") {
		t.Errorf("a.scratch should be noncurrent without recovery: %+v", scratch)
	}
	// The aggregate itemizes its fields as nested sub-reports and is
	// reported partially resident.
	if agg.State != "noncurrent" || !strings.Contains(agg.Display, "partially resident") {
		t.Errorf("aggregate a = %+v", agg)
	}
	if len(agg.Fields) != 3 {
		t.Fatalf("aggregate a carries %d field reports, want 3: %+v", len(agg.Fields), agg.Fields)
	}
	for i, want := range []string{"a.sum", "a.bias", "a.scratch"} {
		if agg.Fields[i].Name != want {
			t.Errorf("field %d = %q, want %q", i, agg.Fields[i].Name, want)
		}
	}

	// SROA instrumentation: the compile split at least one aggregate, and
	// the prints classified fields.
	st := resps[6].Stats
	if st == nil {
		t.Fatalf("stats = %+v", resps[6])
	}
	if st.SROASplits < 1 {
		t.Errorf("stats.SROASplits = %d, want >= 1", st.SROASplits)
	}
	if st.FieldsClassified < 3 {
		t.Errorf("stats.FieldsClassified = %d, want >= 3", st.FieldsClassified)
	}
}

// mcdbgDisplays reproduces `mcdbg fig3.mc break g 1 continue info` using
// the same public API the CLI uses, returning name -> display line.
func mcdbgDisplays(t *testing.T) map[string]string {
	t.Helper()
	a, err := minic.Compile("fig3.mc", prog, minic.WithOptLevel(2))
	if err != nil {
		t.Fatal(err)
	}
	d, err := minic.NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BreakAtStmt("g", 1); err != nil {
		t.Fatal(err)
	}
	if bp, err := d.Continue(); err != nil || bp == nil {
		t.Fatalf("continue: %v %v", bp, err)
	}
	rs, err := d.Info()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, r := range rs {
		out[r.Name] = r.Display()
	}
	return out
}

// TestSpillRestartTranscript is the disk-tier round trip at the daemon
// level: a server with a spill dir compiles and shuts down, a second
// server over the same dir serves the same compile as a warm hit, and the
// rehydrated artifact's session transcript is identical.
func TestSpillRestartTranscript(t *testing.T) {
	dir := t.TempDir()
	stmt := 1

	script := func(sess, handle string) []server.Request {
		return []server.Request{
			{ID: 10, Cmd: "break", Session: sess, Handle: handle, Func: "g", Stmt: &stmt},
			{ID: 11, Cmd: "continue", Session: sess},
			{ID: 12, Cmd: "print", Session: sess, Var: "x"},
			{ID: 13, Cmd: "info", Session: sess},
		}
	}
	drive := func(s *server.Server) (art string, cached bool, resps []server.Response) {
		t.Helper()
		c := runTranscript(t, s, []server.Request{{ID: 1, Cmd: "compile", Name: "fig3.mc", Src: prog}})
		if !c[0].OK {
			t.Fatalf("compile = %+v", c[0])
		}
		o := runTranscript(t, s, []server.Request{{ID: 2, Cmd: "open-session", Artifact: c[0].Artifact}})
		if o[0].Session == "" || o[0].Handle == "" {
			t.Fatalf("open = %+v", o[0])
		}
		return c[0].Artifact, c[0].Cached, runTranscript(t, s, script(o[0].Session, o[0].Handle))
	}

	s1 := server.New(server.Options{SpillDir: dir})
	art1, cached1, serial1 := drive(s1)
	if cached1 {
		t.Fatal("cold compile claims cached")
	}
	s1.Close()

	s2 := server.New(server.Options{SpillDir: dir})
	defer s2.Close()
	art2, cached2, serial2 := drive(s2)
	if !cached2 || art2 != art1 {
		t.Fatalf("restart compile = (%s, cached=%v), want warm hit on %s", art2, cached2, art1)
	}
	st := runTranscript(t, s2, []server.Request{{ID: 99, Cmd: "stats"}})[0].Stats
	if st.SpillHits < 1 || st.CacheMisses != 0 {
		t.Fatalf("restart stats = %+v", st)
	}
	// The rehydrated artifact must answer every command identically.
	if len(serial1) != len(serial2) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(serial1), len(serial2))
	}
	for i := range serial1 {
		a, err := json.Marshal(&serial1[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(&serial2[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("command %d differs after restart:\ncold: %s\nwarm: %s", i, a, b)
		}
	}
}

// TestBatchMatchesSerial is the batch golden test: the same break →
// continue → print → info conversation driven once as four serial
// request lines and once as a single batch request over two sessions on
// the same artifact must produce byte-identical per-command response
// JSON — displays, warnings, stops and all.
func TestBatchMatchesSerial(t *testing.T) {
	s := server.New(server.Options{})
	stmt := 1
	resps := runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "compile", Name: "fig3.mc", Src: prog},
	})
	art := resps[0].Artifact
	if art == "" {
		t.Fatalf("compile = %+v", resps[0])
	}
	resps = runTranscript(t, s, []server.Request{
		{ID: 2, Cmd: "open-session", Artifact: art},
		{ID: 3, Cmd: "open-session", Artifact: art},
	})
	serialSess, batchSess := resps[0], resps[1]
	if serialSess.Session == "" || batchSess.Session == "" {
		t.Fatalf("open-session = %+v", resps)
	}

	script := func(o server.Response) []server.Request {
		return []server.Request{
			{ID: 10, Cmd: "break", Session: o.Session, Handle: o.Handle, Func: "g", Stmt: &stmt},
			{ID: 11, Cmd: "continue", Session: o.Session},
			{ID: 12, Cmd: "print", Session: o.Session, Var: "x"},
			{ID: 13, Cmd: "info", Session: o.Session},
		}
	}
	serial := runTranscript(t, s, script(serialSess))
	batched := runTranscript(t, s, []server.Request{
		{ID: 20, Cmd: "batch", Reqs: script(batchSess)},
	})
	if len(batched) != 1 || !batched[0].OK {
		t.Fatalf("batch = %+v", batched)
	}
	results := batched[0].Results
	if len(serial) != len(results) {
		t.Fatalf("serial answered %d, batch answered %d", len(serial), len(results))
	}
	for i := range serial {
		sj, err := json.Marshal(&serial[i])
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(&results[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(sj) != string(bj) {
			t.Errorf("sub-command %d differs:\nserial:  %s\nbatched: %s", i, sj, bj)
		}
	}
}

// TestBatchErrorIsolation checks that one failing sub-command answers
// with its own error in its slot while the rest of the batch — before
// and after it — succeeds, and the batch response itself is ok.
func TestBatchErrorIsolation(t *testing.T) {
	s := server.New(server.Options{})
	resps := runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "compile", Name: "fig3.mc", Src: prog},
	})
	art := resps[0].Artifact
	resps = runTranscript(t, s, []server.Request{{ID: 2, Cmd: "open-session", Artifact: art}})
	sess, handle := resps[0].Session, resps[0].Handle

	stmt := 1
	resps = runTranscript(t, s, []server.Request{
		{ID: 3, Cmd: "batch", Reqs: []server.Request{
			{ID: 30, Cmd: "break", Session: sess, Handle: handle, Func: "g", Stmt: &stmt},
			{ID: 31, Cmd: "print", Session: sess, Var: "x"}, // not stopped yet
			{ID: 32, Cmd: "frobnicate"},                     // unknown command
			{ID: 33, Cmd: "batch"},                          // nesting rejected
			{ID: 34, Cmd: "continue", Session: sess},
			{ID: 35, Cmd: "info", Session: sess},
		}},
	})
	if len(resps) != 1 || !resps[0].OK {
		t.Fatalf("batch = %+v", resps)
	}
	r := resps[0].Results
	if len(r) != 6 {
		t.Fatalf("got %d results", len(r))
	}
	if !r[0].OK || r[0].Stop == nil {
		t.Errorf("break should succeed: %+v", r[0])
	}
	if r[1].OK || r[1].Error == nil || r[1].Error.Code != server.CodeNotStopped {
		t.Errorf("print before stop = %+v, want %s", r[1].Error, server.CodeNotStopped)
	}
	if r[2].OK || r[2].Error == nil || r[2].Error.Code != server.CodeBadRequest {
		t.Errorf("unknown command = %+v, want %s", r[2].Error, server.CodeBadRequest)
	}
	if r[3].OK || r[3].Error == nil || r[3].Error.Code != server.CodeBadRequest {
		t.Errorf("nested batch = %+v, want %s", r[3].Error, server.CodeBadRequest)
	}
	if !r[4].OK || r[4].Stop == nil {
		t.Errorf("continue after failed sub-commands should still hit the breakpoint: %+v", r[4])
	}
	if !r[5].OK || len(r[5].Vars) == 0 {
		t.Errorf("info should succeed after the batch's earlier errors: %+v", r[5])
	}
	// Sub-command IDs must be echoed so clients can correlate.
	for i, want := range []int64{30, 31, 32, 33, 34, 35} {
		if r[i].ID != want {
			t.Errorf("result %d echoed id %d, want %d", i, r[i].ID, want)
		}
	}
}

// TestAuthReconnectTranscript is the hardening golden test at the
// daemon level: a token-protected server refuses unauthenticated and
// wrongly-authenticated commands, admits an authenticated connection,
// and — after that connection drops mid-session — lets a fresh
// connection attach with the session handle and resume at a stop whose
// `where` response is byte-identical to the pre-drop one.
func TestAuthReconnectTranscript(t *testing.T) {
	s := server.New(server.Options{AuthToken: "hunter2"})
	defer s.Close()
	stmt := 1

	// Connection 1: no token. Only stats is served.
	resps := runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "stats"},
		{ID: 2, Cmd: "compile", Name: "fig3.mc", Src: prog},
		{ID: 3, Cmd: "auth", Token: "wrong"},
		{ID: 4, Cmd: "compile", Name: "fig3.mc", Src: prog},
	})
	if !resps[0].OK {
		t.Fatalf("unauthenticated stats = %+v", resps[0])
	}
	if resps[1].OK || resps[1].Error.Code != server.CodeAuthRequired {
		t.Fatalf("unauthenticated compile = %+v, want %s", resps[1], server.CodeAuthRequired)
	}
	if resps[2].OK || resps[2].Error.Code != server.CodeAuthFailed {
		t.Fatalf("wrong auth = %+v, want %s", resps[2], server.CodeAuthFailed)
	}
	if resps[3].OK || resps[3].Error.Code != server.CodeAuthRequired {
		t.Fatalf("compile after failed auth = %+v, want %s", resps[3], server.CodeAuthRequired)
	}

	// Connection 2: auth, compile, open, run to the breakpoint, record
	// where — then the connection ends (drops) with the session parked.
	resps = runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "auth", Token: "hunter2"},
		{ID: 2, Cmd: "compile", Name: "fig3.mc", Src: prog},
	})
	if !resps[0].OK || !resps[1].OK {
		t.Fatalf("auth+compile = %+v", resps)
	}
	art := resps[1].Artifact
	resps = runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "auth", Token: "hunter2"},
		{ID: 2, Cmd: "open-session", Artifact: art},
	})
	sess, handle := resps[1].Session, resps[1].Handle
	if sess == "" || handle == "" {
		t.Fatalf("open-session = %+v", resps[1])
	}
	resps = runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "auth", Token: "hunter2"},
		{ID: 2, Cmd: "break", Session: sess, Handle: handle, Func: "g", Stmt: &stmt},
		{ID: 3, Cmd: "continue", Session: sess},
		{ID: 9, Cmd: "where", Session: sess},
	})
	if !resps[2].OK || resps[2].Stop == nil {
		t.Fatalf("continue = %+v", resps[2])
	}
	whereBefore, err := json.Marshal(&resps[3])
	if err != nil {
		t.Fatal(err)
	}

	// Connection 3: authenticated but without the handle — the detached
	// session is not claimable by session id alone.
	resps = runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "auth", Token: "hunter2"},
		{ID: 2, Cmd: "where", Session: sess},
		{ID: 3, Cmd: "attach", Session: sess, Handle: "0123456789abcdef0123456789abcdef"},
	})
	if resps[1].OK || resps[1].Error.Code != server.CodeNotOwner {
		t.Fatalf("where without handle = %+v, want %s", resps[1], server.CodeNotOwner)
	}
	if resps[2].OK || resps[2].Error.Code != server.CodeNotOwner {
		t.Fatalf("attach with forged handle = %+v, want %s", resps[2], server.CodeNotOwner)
	}

	// Connection 4: attach with the real handle and re-issue `where`
	// under the same request id — the response must be byte-identical to
	// the pre-drop transcript line, and the session must still execute.
	resps = runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "auth", Token: "hunter2"},
		{ID: 5, Cmd: "attach", Session: sess, Handle: handle},
		{ID: 9, Cmd: "where", Session: sess},
		{ID: 7, Cmd: "continue", Session: sess},
		{ID: 8, Cmd: "close", Session: sess},
	})
	if !resps[1].OK || resps[1].Stop == nil {
		t.Fatalf("attach = %+v", resps[1])
	}
	whereAfter, err := json.Marshal(&resps[2])
	if err != nil {
		t.Fatal(err)
	}
	if string(whereBefore) != string(whereAfter) {
		t.Errorf("where differs across reconnect:\nbefore: %s\nafter:  %s", whereBefore, whereAfter)
	}
	if !resps[3].OK || !resps[3].Exited {
		t.Fatalf("continue after reconnect = %+v", resps[3])
	}
	if !resps[4].OK {
		t.Fatalf("close = %+v", resps[4])
	}

	st := runTranscript(t, s, []server.Request{{ID: 1, Cmd: "stats"}})[0].Stats
	if st.AuthFailures < 1 || st.ConnsTotal < 6 || st.SessionsActive != 0 {
		t.Fatalf("final stats = %+v", st)
	}
}

// TestMalformedLine checks the bad-request path of the wire loop.
func TestMalformedLine(t *testing.T) {
	s := server.New(server.Options{})
	var out strings.Builder
	if err := s.Serve(strings.NewReader("this is not json\n"), &out); err != nil {
		t.Fatal(err)
	}
	var r server.Response
	if err := json.Unmarshal([]byte(out.String()), &r); err != nil {
		t.Fatal(err)
	}
	if r.OK || r.Error == nil || r.Error.Code != server.CodeBadRequest {
		t.Fatalf("malformed line -> %+v", r.Error)
	}
}

// TestStdinSessionEndToEnd mirrors the README transcript: a workload
// compile and a short session over the stdio transport.
func TestStdinSessionEndToEnd(t *testing.T) {
	s := server.New(server.Options{})
	resps := runTranscript(t, s, []server.Request{
		{ID: 1, Cmd: "compile", Workload: "compress"},
	})
	if !resps[0].OK {
		t.Fatalf("compile workload = %+v", resps[0].Error)
	}
	stmt := 6
	resps = runTranscript(t, s, []server.Request{
		{ID: 2, Cmd: "open-session", Artifact: resps[0].Artifact},
	})
	sess, handle := resps[0].Session, resps[0].Handle
	resps = runTranscript(t, s, []server.Request{
		{ID: 3, Cmd: "break", Session: sess, Handle: handle, Func: "compress", Stmt: &stmt},
		{ID: 4, Cmd: "continue", Session: sess},
		{ID: 5, Cmd: "info", Session: sess},
		{ID: 6, Cmd: "close", Session: sess},
	})
	for i, r := range resps {
		if !r.OK {
			t.Fatalf("step %d failed: %+v", i, r.Error)
		}
	}
	if len(resps[2].Vars) == 0 {
		t.Fatal("info returned no variables")
	}
	_ = fmt.Sprintf("%v", resps)
}
