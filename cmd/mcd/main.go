// mcd is the debug-session daemon: a long-lived service speaking a
// line-delimited JSON protocol, serving any number of concurrent debug
// sessions over a shared compiled-artifact cache. By default it serves
// one connection on stdin/stdout (handy for scripting and tests); with
// -listen or -unix it accepts many concurrent connections that share the
// artifact cache and session table.
//
// Usage:
//
//	mcd [flags]
//
// Flags:
//
//	-listen addr     also serve TCP connections on addr (e.g. :7070)
//	-unix path       also serve connections on a unix socket
//	-cache n         artifact cache size in entries (default 32)
//	-max-sessions n  concurrent session limit (default 64)
//	-budget n        per-session execution budget in instructions
//	-workers n       analysis precompute worker pool (default GOMAXPROCS)
//
// Protocol example (one request per line, one response per line):
//
//	{"id":1,"cmd":"compile","workload":"compress"}
//	{"id":2,"cmd":"open-session","artifact":"<id from 1>"}
//	{"id":3,"cmd":"break","session":"s1","func":"compress","stmt":6}
//	{"id":4,"cmd":"continue","session":"s1"}
//	{"id":5,"cmd":"print","session":"s1","var":"w"}
//	{"id":6,"cmd":"stats"}
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/server"
)

func main() {
	listen := flag.String("listen", "", "serve TCP connections on this address")
	unix := flag.String("unix", "", "serve connections on this unix socket path")
	cache := flag.Int("cache", server.DefaultCacheSize, "artifact cache size (entries)")
	maxSess := flag.Int("max-sessions", server.DefaultMaxSessions, "concurrent session limit")
	budget := flag.Int64("budget", server.DefaultStepBudget, "per-session execution budget (instructions)")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	s := server.New(server.Options{
		CacheSize:       *cache,
		MaxSessions:     *maxSess,
		StepBudget:      *budget,
		AnalysisWorkers: *workers,
	})

	errc := make(chan error, 2)
	serving := false
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mcd: listening on %s\n", l.Addr())
		serving = true
		go func() { errc <- s.ListenAndServe(l) }()
	}
	if *unix != "" {
		l, err := net.Listen("unix", *unix)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mcd: listening on unix socket %s\n", *unix)
		serving = true
		go func() { errc <- s.ListenAndServe(l) }()
	}

	if !serving {
		if err := s.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// Listeners only: stdin still drives a session stream if piped, else
	// block on the listeners.
	st, _ := os.Stdin.Stat()
	if st != nil && (st.Mode()&os.ModeCharDevice) == 0 {
		if err := s.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := <-errc; err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
