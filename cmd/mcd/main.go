// mcd is the debug-session daemon: a long-lived service speaking a
// line-delimited JSON protocol, serving any number of concurrent debug
// sessions over a shared compiled-artifact store. By default it serves
// one connection on stdin/stdout (handy for scripting and tests); with
// -listen or -unix it accepts many concurrent connections that share the
// artifact store and session table.
//
// Usage:
//
//	mcd [flags]
//
// Flags:
//
//	-listen addr     also serve TCP connections on addr (e.g. :7070)
//	-unix path       also serve connections on a unix socket
//	-auth-token tok  require this shared secret before serving anything
//	                 but stats (clients auth once or per request)
//	-drain-timeout d how long shutdown waits for in-flight requests
//	-cache n         artifact store size in artifacts (default 32)
//	-shards n        artifact store shard count (default 8)
//	-mem-budget n    artifact + analysis memory budget in bytes (0 = unbounded)
//	-spill-dir path  spill evicted artifacts to this directory and reload
//	                 them on miss, so restarts keep the warm set
//	-max-sessions n  concurrent session limit (default 64)
//	-session-ttl d   reap sessions idle longer than d, e.g. 30m (0 = never)
//	-budget n        per-session execution budget in instructions
//	-workers n       analysis precompute worker pool (default GOMAXPROCS)
//	-request-timeout d
//	                 cut off a continue/step running longer than d with a
//	                 typed "timeout" error; the session survives at the
//	                 instruction boundary where the cutoff landed (0 = never)
//	-output-limit n  per-session program-output cap in bytes; a session
//	                 printing past it gets a typed "output-limit" error
//	                 (0 = the VM default, negative = unlimited)
//	-pprof addr      serve net/http/pprof on addr (e.g. localhost:6060)
//	                 for live CPU/heap profiling of the daemon
//
// Every connection owns the sessions it opens: open-session returns an
// unguessable session id plus a secret handle, other connections'
// commands on it are denied, and a dropped connection leaves its
// sessions detached until a client presents the handle (attach) or the
// -session-ttl reaper collects them.
//
// On stdin EOF, SIGINT or SIGTERM the daemon stops accepting, drains
// in-flight requests, and flushes the resident artifact set to the spill
// directory (when configured) before exiting.
//
// Protocol example (one request per line, one response per line):
//
//	{"id":1,"cmd":"compile","workload":"compress"}
//	{"id":2,"cmd":"open-session","artifact":"<id from 1>"}
//	{"id":3,"cmd":"break","session":"s1","func":"compress","stmt":6}
//	{"id":4,"cmd":"continue","session":"s1"}
//	{"id":5,"cmd":"print","session":"s1","var":"w"}
//	{"id":6,"cmd":"stats"}
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/server"
)

func main() {
	listen := flag.String("listen", "", "serve TCP connections on this address")
	unix := flag.String("unix", "", "serve connections on this unix socket path")
	authToken := flag.String("auth-token", "", "shared secret required before serving anything but stats")
	drainTimeout := flag.Duration("drain-timeout", server.DefaultDrainTimeout, "how long shutdown waits for in-flight requests")
	cache := flag.Int("cache", server.DefaultCacheSize, "artifact store size (artifacts)")
	shards := flag.Int("shards", server.DefaultShards, "artifact store shard count")
	memBudget := flag.Int64("mem-budget", 0, "artifact + analysis memory budget in bytes (0 = unbounded)")
	spillDir := flag.String("spill-dir", "", "spill evicted artifacts to this directory (empty = memory-only)")
	maxSess := flag.Int("max-sessions", server.DefaultMaxSessions, "concurrent session limit")
	sessionTTL := flag.Duration("session-ttl", 0, "reap sessions idle longer than this (0 = never)")
	budget := flag.Int64("budget", server.DefaultStepBudget, "per-session execution budget (instructions)")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	compileWorkers := flag.Int("compile-workers", 0, "per-function compile worker pool size (0 = GOMAXPROCS)")
	requestTimeout := flag.Duration("request-timeout", 0, "wall-clock bound on one continue/step command (0 = unbounded)")
	outputLimit := flag.Int64("output-limit", 0, "per-session program-output cap in bytes (0 = default, negative = unlimited)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		// The pprof import wires the profiling handlers into
		// http.DefaultServeMux; this listener exposes only those.
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mcd: pprof on http://%s/debug/pprof/\n", pl.Addr())
		go func() {
			if err := http.Serve(pl, nil); err != nil {
				fmt.Fprintf(os.Stderr, "mcd: pprof server: %v\n", err)
			}
		}()
	}

	s := server.New(server.Options{
		AuthToken:       *authToken,
		DrainTimeout:    *drainTimeout,
		CacheSize:       *cache,
		Shards:          *shards,
		MemoryBudget:    *memBudget,
		SpillDir:        *spillDir,
		MaxSessions:     *maxSess,
		SessionTTL:      *sessionTTL,
		StepBudget:      *budget,
		AnalysisWorkers: *workers,
		CompileWorkers:  *compileWorkers,
		RequestTimeout:  *requestTimeout,
		OutputLimit:     *outputLimit,
	})

	// Flush the warm set on SIGINT/SIGTERM so a restarted daemon with the
	// same -spill-dir serves it from disk.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		s.Close()
		os.Exit(0)
	}()

	exit := func(code int) {
		s.Close()
		os.Exit(code)
	}

	errc := make(chan error, 2)
	serving := false
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "mcd: listening on %s\n", l.Addr())
		serving = true
		go func() { errc <- s.ListenAndServe(l) }()
	}
	if *unix != "" {
		l, err := net.Listen("unix", *unix)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "mcd: listening on unix socket %s\n", *unix)
		serving = true
		go func() { errc <- s.ListenAndServe(l) }()
	}

	if !serving {
		if err := s.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		exit(0)
	}
	// Listeners only: stdin still drives a session stream if piped, else
	// block on the listeners.
	st, _ := os.Stdin.Stat()
	if st != nil && (st.Mode()&os.ModeCharDevice) == 0 {
		if err := s.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		exit(0)
	}
	if err := <-errc; err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	exit(0)
}
