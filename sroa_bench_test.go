package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/opt"
	"repro/pkg/minic"
)

// sroaBenchSrc builds a struct-heavy MiniC workload: n four-field
// aggregates, each written up front, updated in a shared loop and folded
// into the result — so SROA has n candidates, the scalar pipeline gets the
// resulting member variables, and the classifier sees 4n field entities in
// scope at the print.
func sroaBenchSrc(n int) string {
	var sb strings.Builder
	sb.WriteString("struct V { int a; int b; int c; int d; };\n")
	sb.WriteString("int f(int n) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  struct V s%d;\n", i)
	}
	sb.WriteString("  int i;\n  int acc;\n  acc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  s%d.a = %d; s%d.b = %d; s%d.c = n * %d; s%d.d = 0;\n",
			i, i+1, i, 2*i+3, i, i+1, i)
	}
	sb.WriteString("  for (i = 0; i < n; i = i + 1) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "    s%d.d = s%d.d + s%d.a * i + s%d.b;\n", i, i, i, i)
	}
	sb.WriteString("  }\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  acc = acc + s%d.d + s%d.c;\n", i, i)
	}
	sb.WriteString("  print(acc);\n  return acc;\n}\n")
	sb.WriteString("int main() { return f(9); }\n")
	return sb.String()
}

const sroaBenchStructs = 8

// BenchmarkSROACompile measures the full compile of the struct-heavy
// workload with and without scalar replacement. The sroa case b.Fatals
// unless every aggregate was actually split (the global split counter must
// advance by structs-per-compile each iteration), so a silently disabled
// SROA cannot pass the CI smoke.
func BenchmarkSROACompile(b *testing.B) {
	src := sroaBenchSrc(sroaBenchStructs)
	withSROA := opt.O2()
	noSROA := opt.O2()
	noSROA.SROA = false

	b.Run("sroa", func(b *testing.B) {
		b.ReportAllocs()
		before := opt.SROASplitCount()
		for i := 0; i < b.N; i++ {
			if _, err := minic.Compile("sroa_bench.mc", src, minic.WithPasses(withSROA)); err != nil {
				b.Fatal(err)
			}
		}
		if got, want := opt.SROASplitCount()-before, int64(b.N*sroaBenchStructs); got < want {
			b.Fatalf("SROA split %d aggregates over %d compiles, want >= %d", got, b.N, want)
		}
	})
	b.Run("nosroa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := minic.Compile("sroa_bench.mc", src, minic.WithPasses(noSROA)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSROAExec measures what scalar replacement buys at run time:
// the same struct-heavy workload executed to completion, SROA'd (fields
// promoted to registers and optimized through) vs unsplit (every field
// access a memory load/store). Reports the simulator's cycle count.
func BenchmarkSROAExec(b *testing.B) {
	src := sroaBenchSrc(sroaBenchStructs)
	withSROA := opt.O2()
	noSROA := opt.O2()
	noSROA.SROA = false
	for _, cfg := range []struct {
		name string
		o    opt.Options
	}{{"sroa", withSROA}, {"nosroa", noSROA}} {
		b.Run(cfg.name, func(b *testing.B) {
			art, err := minic.Compile("sroa_bench.mc", src, minic.WithPasses(cfg.o))
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := minic.NewSession(art)
				if err != nil {
					b.Fatal(err)
				}
				if bp, err := d.Continue(); err != nil || bp != nil {
					b.Fatalf("run to completion: %v %v", bp, err)
				}
				cycles = d.Debugger().VM.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkSROAFieldInfo measures the per-field classification query: one
// info command at a stop where 4n member scalars of n decomposed structs
// are in scope. Fails unless the reports actually carry nested per-field
// sub-reports.
func BenchmarkSROAFieldInfo(b *testing.B) {
	src := sroaBenchSrc(sroaBenchStructs)
	art, err := minic.Compile("sroa_bench.mc", src, minic.WithPasses(opt.O2()))
	if err != nil {
		b.Fatal(err)
	}
	d, err := minic.NewSession(art)
	if err != nil {
		b.Fatal(err)
	}
	printLine := 0
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "print(acc") {
			printLine = i + 1
		}
	}
	if _, err := d.BreakAtLine(printLine); err != nil {
		b.Fatal(err)
	}
	if bp, err := d.Continue(); err != nil || bp == nil {
		b.Fatalf("continue: %v %v", bp, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	fields := 0
	for i := 0; i < b.N; i++ {
		rs, err := d.Info()
		if err != nil {
			b.Fatal(err)
		}
		fields = 0
		for _, r := range rs {
			fields += len(r.Fields)
		}
	}
	if want := 4 * sroaBenchStructs; fields < want {
		b.Fatalf("info returned %d per-field sub-reports, want >= %d", fields, want)
	}
	b.ReportMetric(float64(fields), "fields/op")
}
